"""Discrete-event simulation engine: events, processes, locks and cores."""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.parallel import (
    Partition,
    Ports,
    map_tasks,
    run_partitions,
    run_processes,
    run_sequential,
)
from repro.sim.sync import LockStats, Mutex, Semaphore, Store
from repro.sim.cpu import DEFAULT_QUANTUM, Core, SimThread, UtilizationProbe

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "Partition",
    "Ports",
    "map_tasks",
    "run_partitions",
    "run_processes",
    "run_sequential",
    "LockStats",
    "Mutex",
    "Semaphore",
    "Store",
    "Core",
    "SimThread",
    "UtilizationProbe",
    "DEFAULT_QUANTUM",
]
