"""Processor-core model.

Cores are the contended hardware resource at the heart of the paper's
motivation: the Linux kernel "steals" idle cores of other container pools
to flush dirty pages, so a pool's performance depends on *whose* cores its
I/O is processed on. We model each core as a FIFO run queue; computation is
expressed as ``yield from thread.run(cpu_seconds)`` which slices the work
into scheduling quanta so that competing threads interleave.

Key concepts:

* :class:`Core` — one hardware core with a run queue and cumulative busy
  time (for utilisation reporting).
* :class:`SimThread` — a schedulable entity with a *cpuset* (the cores it
  may run on, i.e. its cgroup cpuset) and optional *pinning* to a single
  core (Danaus pins service and application threads, §3.5).
* :class:`UtilizationProbe` — samples busy time over a window to report
  per-core utilisation like the paper's line charts.
"""

from repro.common.errors import SimulationError, ThreadKilled
from repro.sim.sync import Mutex

__all__ = ["Core", "SimThread", "UtilizationProbe", "DEFAULT_QUANTUM"]

#: Default scheduling quantum (seconds). Work longer than this is sliced so
#: that contending threads share a core rather than running to completion.
DEFAULT_QUANTUM = 0.0005


class Core(object):
    """A single hardware core: a FIFO run queue plus busy-time accounting."""

    __slots__ = ("sim", "index", "name", "_mutex", "busy_time", "last_thread")

    def __init__(self, sim, index, name=None):
        self.sim = sim
        self.index = index
        self.name = name or ("core%d" % index)
        self._mutex = Mutex(sim, name="runq:%s" % self.name)
        self.busy_time = 0.0
        self.last_thread = None

    @property
    def load(self):
        """Current run-queue length (running + waiting threads)."""
        return self._mutex.queue_len + (1 if self._mutex.locked else 0)

    def occupy(self, duration, thread=None):
        """Run ``thread`` on this core for ``duration`` seconds.

        Generator; yields until the slice completes. Returns True when the
        slice was a context switch (a different thread ran last).
        """
        yield self._mutex.acquire(who=thread)
        switched = self.last_thread is not thread
        self.last_thread = thread
        try:
            yield self.sim.timeout(duration)
            self.busy_time += duration
            obs = self.sim.observer
            if obs is not None:
                obs.record_cpu(self, thread, duration, switched)
        finally:
            self._mutex.release()
        return switched

    def __repr__(self):
        return "<Core %s load=%d>" % (self.name, self.load)


class SimThread(object):
    """A schedulable thread of execution.

    Attributes:
        cpuset: list of :class:`Core` the thread may run on (its cgroup).
        pinned: a single :class:`Core` or None; set by Danaus drivers.
        ctx_switches: count of core handoffs where this thread displaced a
            different one — an approximation of involuntary+voluntary
            context switches, complemented by the explicit counts the FUSE
            and IPC transports record.
    """

    __slots__ = ("sim", "name", "cpuset", "pinned", "ctx_switches",
                 "cpu_time", "killed")

    def __init__(self, sim, name, cpuset):
        if not cpuset:
            raise SimulationError("thread %r needs a non-empty cpuset" % name)
        self.sim = sim
        self.name = name
        self.cpuset = list(cpuset)
        self.pinned = None
        self.ctx_switches = 0
        self.cpu_time = 0.0
        self.killed = False

    def kill(self):
        """Mark the thread dead: its owning process was killed.

        The thread is not interrupted in place (that could leak a held
        core grant); instead :meth:`run` raises
        :class:`~repro.common.errors.ThreadKilled` at the next scheduling
        point, so the executing code unwinds through its ``finally``
        blocks and stops mutating shared state.
        """
        self.killed = True

    def pin(self, core):
        """Pin the thread to ``core`` (must be inside the cpuset)."""
        if core not in self.cpuset:
            raise SimulationError(
                "cannot pin %s to %s outside its cpuset" % (self.name, core.name)
            )
        self.pinned = core

    def unpin(self):
        self.pinned = None

    def set_cpuset(self, cores):
        """Move the thread to a new cpuset (cgroup reconfiguration)."""
        if not cores:
            raise SimulationError("empty cpuset for %r" % self.name)
        self.cpuset = list(cores)
        if self.pinned is not None and self.pinned not in self.cpuset:
            self.pinned = None

    def pick_core(self):
        """Choose the core for the next slice: pinned, else least loaded.

        Ties on instantaneous run-queue length break toward the core with
        the least accumulated busy time — the load-balancing behaviour of
        a real scheduler. Without it, roaming kernel threads (flushers,
        kworkers) would pile onto the lowest-numbered cores and never
        spread onto idle neighbour cores, hiding the core stealing the
        paper measures (Fig. 1a).
        """
        if self.pinned is not None:
            return self.pinned
        cpuset = self.cpuset
        best = cpuset[0]
        if len(cpuset) == 1:
            return best
        mux = best._mutex
        best_load = len(mux._waiters) + (mux._owner is not None)
        best_busy = best.busy_time
        for core in cpuset[1:]:
            mux = core._mutex
            load = len(mux._waiters) + (mux._owner is not None)
            if load < best_load or (load == best_load
                                    and core.busy_time < best_busy):
                best = core
                best_load = load
                best_busy = core.busy_time
        return best

    def run(self, cpu_seconds, quantum=DEFAULT_QUANTUM):
        """Consume ``cpu_seconds`` of processor time on the cpuset.

        Generator; the work is sliced into ``quantum``-sized pieces, each
        dispatched to the currently least-loaded permitted core, so that
        contention shows up as queueing delay rather than being ignored.
        """
        if cpu_seconds < 0:
            raise SimulationError("negative cpu time %r" % cpu_seconds)
        sim = self.sim
        remaining = cpu_seconds
        # The body of pick_core()/Core.occupy() is inlined here: this loop
        # runs once per quantum for every simulated CPU charge in every
        # experiment, and the nested-generator and property-call overhead
        # dominated scheduler profiles. Event order is identical to the
        # un-inlined form (acquire, timeout, release).
        while remaining > 1e-12:
            if self.killed:
                raise ThreadKilled("thread %s was killed" % self.name)
            piece = remaining if remaining < quantum else quantum
            core = self.pinned
            if core is None:
                cpuset = self.cpuset
                core = cpuset[0]
                if len(cpuset) > 1:
                    mux = core._mutex
                    best_load = len(mux._waiters) + (mux._owner is not None)
                    best_busy = core.busy_time
                    for cand in cpuset[1:]:
                        mux = cand._mutex
                        load = len(mux._waiters) + (mux._owner is not None)
                        if load < best_load or (load == best_load
                                                and cand.busy_time < best_busy):
                            core = cand
                            best_load = load
                            best_busy = cand.busy_time
            yield core._mutex.acquire(who=self)
            switched = core.last_thread is not self
            core.last_thread = self
            try:
                yield sim.timeout(piece)
                core.busy_time += piece
                obs = sim.observer
                if obs is not None:
                    obs.record_cpu(core, self, piece, switched)
            finally:
                core._mutex.release()
            if switched:
                self.ctx_switches += 1
            self.cpu_time += piece
            remaining -= piece

    def __repr__(self):
        where = self.pinned.name if self.pinned else "%d cores" % len(self.cpuset)
        return "<SimThread %s on %s>" % (self.name, where)


class UtilizationProbe(object):
    """Samples per-core busy time to compute utilisation over a window.

    The paper's line charts report "% utilisation of the cores of pool X";
    this probe snapshots cumulative busy time at start and computes
    ``(busy_delta / elapsed)`` per core on demand.
    """

    def __init__(self, sim, cores):
        self.sim = sim
        self.cores = list(cores)
        self.reset()

    def reset(self):
        self._t0 = self.sim.now
        self._busy0 = [core.busy_time for core in self.cores]

    def utilization(self):
        """Mean utilisation (0..1) per core across the window so far."""
        elapsed = self.sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        busy = sum(
            core.busy_time - b0 for core, b0 in zip(self.cores, self._busy0)
        )
        return busy / (elapsed * len(self.cores))

    def total_utilization(self):
        """Summed utilisation across cores (e.g. 122% = 1.22 of one core)."""
        elapsed = self.sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        busy = sum(
            core.busy_time - b0 for core, b0 in zip(self.cores, self._busy0)
        )
        return busy / elapsed
