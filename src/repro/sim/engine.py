"""A small discrete-event simulation (DES) engine.

The engine drives every component of the Danaus reproduction: filesystem
operations, kernel writeback, network transfers and workload generators all
run as :class:`Process` coroutines over a shared :class:`Simulator` clock.

The programming model follows the classic generator-coroutine style:

    def worker(sim):
        yield sim.timeout(1.0)          # sleep 1 simulated second
        result = yield other_process    # wait for a process to finish
        return result

A process yields :class:`Event` objects and is resumed with the event's
value once the event triggers. Exceptions propagate: failing an event with
``event.fail(exc)`` raises ``exc`` inside every waiting process.

The engine is deliberately small but complete: one-shot events, timeouts,
process join, ``any_of``/``all_of`` combinators and interrupts. It is
deterministic — two runs with the same seed produce identical traces.
"""

import heapq

from repro.common.errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Simulator",
    "AnyOf",
    "AllOf",
]


class Event(object):
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which its callbacks run at the
    current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "triggered", "name")

    def __init__(self, sim, name=None):
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._exc = None
        self.triggered = False
        self.name = name

    @property
    def ok(self):
        """True when the event triggered successfully."""
        return self.triggered and self._exc is None

    @property
    def value(self):
        """The value the event was triggered with (or raises its failure)."""
        if not self.triggered:
            raise SimulationError("event %r has not triggered yet" % self)
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event %r already triggered" % self)
        self.triggered = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exc):
        """Trigger the event with an exception.

        Waiting processes get ``exc`` raised at their ``yield``.
        """
        if self.triggered:
            raise SimulationError("event %r already triggered" % self)
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.triggered = True
        self._exc = exc
        self.sim._schedule_event(self)
        return self

    def subscribe(self, callback):
        """Register ``callback(event)``; runs when the event triggers.

        If the event already triggered, the callback is scheduled to run at
        the current time (never synchronously), preserving run-to-completion
        semantics for the caller.
        """
        if self.triggered:
            self.sim._schedule_call(lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        label = self.name or self.__class__.__name__
        return "<%s %s>" % (label, state)


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimulationError("negative timeout delay %r" % delay)
        super().__init__(sim, name="Timeout(%g)" % delay)
        self._value = value
        sim._schedule(sim.now + delay, self._fire)

    def _fire(self):
        self.triggered = True
        self.sim._run_callbacks(self)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running coroutine; also an event that triggers when it finishes.

    The process's return value (via ``return x`` in the generator) becomes
    the event value, so ``result = yield proc`` both joins and collects.
    """

    __slots__ = ("generator", "_waiting_on", "_resume_scheduled")

    def __init__(self, sim, generator, name=None):
        if not hasattr(generator, "send"):
            raise SimulationError(
                "spawn() needs a generator, got %r — did you call the "
                "function with ()?" % (generator,)
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "proc"))
        self.generator = generator
        self._waiting_on = None
        self._resume_scheduled = False
        sim._schedule_call(lambda: self._step(None, None))

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Raise :class:`Interrupt` inside the process at its current yield.

        The event the process was waiting on is abandoned (its trigger will
        be ignored by this process). Interrupting a finished process is a
        no-op.
        """
        if self.triggered:
            return
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None:
            try:
                waited.callbacks.remove(self._on_event)
            except ValueError:
                pass
        self.sim._schedule_call(lambda: self._step(None, Interrupt(cause)))

    def _on_event(self, event):
        if self._waiting_on is not event:
            return  # interrupted while waiting; stale wakeup
        self._waiting_on = None
        if event.ok:
            self._step(event._value, None)
        else:
            self._step(None, event._exc)

    def _step(self, value, exc):
        if self.triggered:
            return
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.triggered = True
            self._value = stop.value
            self.sim._schedule_event(self)
            return
        except Interrupt as intr:
            # An uncaught interrupt terminates the process quietly.
            self.triggered = True
            self._value = intr.cause
            self.sim._schedule_event(self)
            return
        except BaseException as err:  # noqa: BLE001 - propagate to joiners
            self.triggered = True
            self._exc = err
            if not self.callbacks:
                self.sim._record_crash(self, err)
            self.sim._schedule_event(self)
            return
        if not isinstance(target, Event):
            self.generator.throw(
                SimulationError("process yielded non-event %r" % (target,))
            )
            return
        if target.sim is not self.sim:
            self.generator.throw(
                SimulationError("event from a different simulator yielded")
            )
            return
        self._waiting_on = target
        target.subscribe(self._on_event)


class AnyOf(Event):
    """Triggers when any child event triggers; value is (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, sim, events):
        super().__init__(sim, name="AnyOf")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for index, event in enumerate(self._children):
            event.subscribe(self._make_cb(index))

    def _make_cb(self, index):
        def cb(event):
            if self.triggered:
                return
            if event.ok:
                self.succeed((index, event._value))
            else:
                self.fail(event._exc)

        return cb


class AllOf(Event):
    """Triggers when every child event has triggered; value is the list."""

    __slots__ = ("_children", "_pending")

    def __init__(self, sim, events):
        super().__init__(sim, name="AllOf")
        self._children = list(events)
        self._pending = len(self._children)
        if not self._children:
            # Trivially complete.
            self.succeed([])
            return
        for event in self._children:
            event.subscribe(self._on_child)

    def _on_child(self, event):
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child._value for child in self._children])


class Simulator(object):
    """The event loop: a clock plus a priority queue of pending callbacks."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0
        self.crashed = []  # (process, exception) for unobserved failures
        self.tracer = None  # event sink (repro.obs.Observer or legacy Tracer)
        self.observer = None  # full repro.obs.Observer (spans, profiles)
        self._locks = []  # (scope, lock_class, instance, Mutex) registry

    def trace(self, category, name, **detail):
        """Emit a trace event when a tracer is attached (else a no-op)."""
        if self.tracer is not None:
            self.tracer.emit(self.now, category, name, **detail)

    def register_lock(self, scope, lock_class, instance, lock):
        """Record a named lock for contention profiling.

        Registration is unconditional (lock creation is rare); the
        attached observer reads this registry lazily when asked for a
        contention table, so no per-acquisition cost is added.
        """
        self._locks.append((scope, lock_class, instance, lock))

    def registered_locks(self):
        """All locks registered so far: ``(scope, class, instance, lock)``."""
        return list(self._locks)

    # -- scheduling internals ------------------------------------------

    def _schedule(self, when, fn):
        if when < self.now:
            raise SimulationError("cannot schedule in the past")
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn))

    def _schedule_call(self, fn):
        self._schedule(self.now, fn)

    def _schedule_event(self, event):
        self._schedule(self.now, lambda: self._run_callbacks(event))

    def _run_callbacks(self, event):
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def _record_crash(self, process, exc):
        self.crashed.append((process, exc))

    # -- public API ------------------------------------------------------

    def event(self, name=None):
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None):
        """Create an event triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator, name=None):
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events):
        """Wait for the first of ``events``; yields ``(index, value)``."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Wait for all ``events``; yields the list of their values."""
        return AllOf(self, events)

    def run(self, until=None):
        """Run events until the queue is empty or the clock passes ``until``.

        Returns the final simulation time. Unobserved process crashes are
        re-raised here so that bugs never pass silently.
        """
        while self._heap:
            when, _seq, fn = self._heap[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._heap)
            self.now = when
            fn()
            if self.crashed:
                process, exc = self.crashed[0]
                raise SimulationError(
                    "process %r crashed: %r" % (process.name, exc)
                ) from exc
        else:
            if until is not None and until > self.now:
                self.now = until
        return self.now

    def run_until(self, event, deadline):
        """Run until ``event`` triggers or the clock passes ``deadline``.

        Unlike :meth:`run`, this stops as soon as the event fires — vital
        when daemon loops (flushers, service threads) keep the heap
        non-empty forever. Returns True when the event triggered.
        """
        while self._heap and not event.triggered:
            when, _seq, fn = self._heap[0]
            if when > deadline:
                break
            heapq.heappop(self._heap)
            self.now = when
            fn()
            if self.crashed:
                process, exc = self.crashed[0]
                raise SimulationError(
                    "process %r crashed: %r" % (process.name, exc)
                ) from exc
        return event.triggered

    def run_process(self, generator, name=None, until=None):
        """Convenience: spawn ``generator``, run until it finishes, return value."""
        process = self.spawn(generator, name=name)
        self.run(until=until)
        if not process.triggered:
            raise SimulationError(
                "process %r did not finish by t=%r" % (process.name, until)
            )
        return process.value
