"""A small discrete-event simulation (DES) engine.

The engine drives every component of the Danaus reproduction: filesystem
operations, kernel writeback, network transfers and workload generators all
run as :class:`Process` coroutines over a shared :class:`Simulator` clock.

The programming model follows the classic generator-coroutine style:

    def worker(sim):
        yield sim.timeout(1.0)          # sleep 1 simulated second
        result = yield other_process    # wait for a process to finish
        return result

A process yields :class:`Event` objects and is resumed with the event's
value once the event triggers. Exceptions propagate: failing an event with
``event.fail(exc)`` raises ``exc`` inside every waiting process.

The engine is deliberately small but complete: one-shot events, timeouts,
process join, ``any_of``/``all_of`` combinators and interrupts. It is
deterministic — two runs with the same seed produce identical traces.

Scheduler design (the hot path)
-------------------------------

Pending work lives in two tiers:

* a **now-queue** — a FIFO deque of ``(seq, fn, arg)`` entries for
  callbacks scheduled *at the current time* (event callback batches,
  process resumptions). Same-timestamp work is the overwhelming
  majority of scheduler traffic (every uncontended lock acquire, every
  resumption on an already-triggered event), and a deque append/popleft
  is O(1) where a heap push/pop is O(log n);
* a **time-ordered heap** of ``(when, seq, fn, arg)`` entries for
  callbacks at future times (timeouts).

Entries are *tuple-dispatched*: ``fn`` is a bound method (or plain
callback) invoked as ``fn(arg)`` — no per-call lambda closures are
allocated. A single monotonically increasing sequence number spans both
tiers, and the run loop always executes the entry with the smallest
``(when, seq)`` pair, so the schedule is **byte-identical** to the
original single-heap scheduler: the two-tier split is a pure wall-clock
optimization (see ``repro.sim.bench`` for the fingerprint machinery
that pins this equivalence).

Partition awareness (parallel DES)
----------------------------------

A :class:`Simulator` can serve as one *partition* of a larger
partitioned simulation (``repro.sim.parallel``): an independent event
loop owning one simulated machine's entities, advanced only up to a
*safe-time horizon* granted by conservative lookahead. The engine keeps
no partition logic in the hot loop — the run loops above are untouched
and schedules stay byte-identical — it only exposes the two primitives
the partition runtime needs:

* :meth:`Simulator.peek_next_time` — the timestamp of the earliest
  pending entry, so the runtime can pick the next executable timestep
  and bound it against the horizon;
* :meth:`Simulator.schedule_external` — inject a cross-partition
  arrival (a fabric message from another partition) at its delivery
  time. Arrivals are injected *before* the timestep they land in is
  executed, at a deterministic point in the round loop, so the
  resulting ``(when, seq)`` schedule does not depend on wall-clock
  message timing.

``Simulator.partition`` names the partition a simulator belongs to
(``None`` for the ordinary sequential case); the observability layer
uses it to label per-partition sync counters.
"""

import heapq
from collections import deque

from repro.common.errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Simulator",
    "AnyOf",
    "AllOf",
]


class _CrashHalt(BaseException):
    """Internal control-flow signal: an unobserved crash was recorded.

    Raised by :meth:`Simulator._record_crash` to unwind straight out of
    the run loop, so the loop body itself carries no per-event crash
    check. Derives from ``BaseException`` so generator code that catches
    ``Exception`` cannot swallow it (it never crosses user frames in
    normal operation — crashes are recorded only from engine frames).
    """


class Event(object):
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which its callbacks run at the
    current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "triggered", "name")

    def __init__(self, sim, name=None):
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._exc = None
        self.triggered = False
        self.name = name

    @property
    def ok(self):
        """True when the event triggered successfully."""
        return self.triggered and self._exc is None

    @property
    def value(self):
        """The value the event was triggered with (or raises its failure)."""
        if not self.triggered:
            raise SimulationError("event %r has not triggered yet" % self)
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event %r already triggered" % self)
        self.triggered = True
        self._value = value
        if self.callbacks:
            self.sim._schedule_event(self)
        return self

    def fail(self, exc):
        """Trigger the event with an exception.

        Waiting processes get ``exc`` raised at their ``yield``.
        """
        if self.triggered:
            raise SimulationError("event %r already triggered" % self)
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.triggered = True
        self._exc = exc
        if self.callbacks:
            self.sim._schedule_event(self)
        return self

    def subscribe(self, callback):
        """Register ``callback(event)``; runs when the event triggers.

        If the event already triggered, the callback is scheduled to run at
        the current time (never synchronously), preserving run-to-completion
        semantics for the caller.
        """
        if self.triggered:
            self.sim._schedule_call(callback, self)
        else:
            self.callbacks.append(callback)

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        label = self.name or self.__class__.__name__
        return "<%s %s>" % (label, state)


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimulationError("negative timeout delay %r" % delay)
        # Event.__init__ and Simulator._schedule are flattened here:
        # timeouts are the single most-allocated event type (one per CPU
        # quantum, poll interval and RPC), and the two calls they replace
        # show up in every profile. Identical schedule: same seq
        # numbering and same now-vs-future routing as _schedule().
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exc = None
        self.triggered = False
        self.name = None
        when = sim.now + delay
        sim._seq += 1
        if when == sim.now:
            sim._ready.append((sim._seq, self._fire, None))
        else:
            heapq.heappush(sim._heap, (when, sim._seq, self._fire, None))

    def _fire(self, _arg):
        self.triggered = True
        if self.callbacks:
            self.sim._run_callbacks(self)

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        return "<Timeout %s>" % state


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


def _watch_abandoned(event):
    """Callback planted on abandoned combinator losers.

    A loser that *fails* after the race was decided would otherwise be
    silently swallowed; route it to the crash record so bugs never pass
    silently (the engine's stated contract). Module-level on purpose:
    it holds no reference back to the combinator, so losers do not keep
    the whole race alive (the callback-leak fix).
    """
    if event._exc is not None:
        event.sim._record_crash(event, event._exc)


class Process(Event):
    """A running coroutine; also an event that triggers when it finishes.

    The process's return value (via ``return x`` in the generator) becomes
    the event value, so ``result = yield proc`` both joins and collects.
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, sim, generator, name=None):
        if not hasattr(generator, "send"):
            raise SimulationError(
                "spawn() needs a generator, got %r — did you call the "
                "function with ()?" % (generator,)
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "proc"))
        self.generator = generator
        self._waiting_on = None
        sim._schedule_call(self._start, None)

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Raise :class:`Interrupt` inside the process at its current yield.

        The event the process was waiting on is abandoned (its trigger will
        be ignored by this process). Interrupting a finished process is a
        no-op.
        """
        if self.triggered:
            return
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None:
            try:
                waited.callbacks.remove(self._on_event)
            except ValueError:
                pass  # resumption already queued; _resume drops it as stale
        self.sim._schedule_call(self._throw, Interrupt(cause))

    # -- tuple-dispatched entry points ---------------------------------

    def _start(self, _arg):
        self._step(None, None)

    def _throw(self, exc):
        self._step(None, exc)

    def _resume(self, event):
        """Fast-path resumption on an event that had already triggered.

        The ``_waiting_on`` identity check drops stale wakeups: an
        interrupt that lands while this resumption sits in the now-queue
        clears ``_waiting_on``, and the queued entry must then be a
        no-op (the Interrupt entry behind it does the real resumption).
        """
        if self._waiting_on is not event:
            return
        self._waiting_on = None
        if event._exc is None:
            self._step(event._value, None)
        else:
            self._step(None, event._exc)

    def _on_event(self, event):
        if self._waiting_on is not event:
            return  # interrupted while waiting; stale wakeup
        self._waiting_on = None
        if event._exc is None:
            self._step(event._value, None)
        else:
            self._step(None, event._exc)

    def _step(self, value, exc):
        if self.triggered:
            return
        sim = self.sim
        generator = self.generator
        while True:
            try:
                if exc is not None:
                    target = generator.throw(exc)
                else:
                    target = generator.send(value)
            except StopIteration as stop:
                self.triggered = True
                self._value = stop.value
                if self.callbacks:
                    sim._schedule_event(self)
                return
            except Interrupt as intr:
                # An uncaught interrupt terminates the process quietly.
                self.triggered = True
                self._value = intr.cause
                if self.callbacks:
                    sim._schedule_event(self)
                return
            except BaseException as err:  # noqa: BLE001 - propagate to joiners
                self.triggered = True
                self._exc = err
                if self.callbacks:
                    sim._schedule_event(self)
                else:
                    sim._record_crash(self, err)
                return
            if isinstance(target, Event) and target.sim is sim:
                break
            # A bad yield is thrown back into the generator through the
            # same try/except: a generator that catches the error and
            # yields a valid event next continues normally; one that does
            # not is marked crashed/triggered like any other failure
            # (previously both paths fell out of _step unhandled).
            if isinstance(target, Event):
                value, exc = None, SimulationError(
                    "event from a different simulator yielded"
                )
            else:
                value, exc = None, SimulationError(
                    "process yielded non-event %r" % (target,)
                )
        self._waiting_on = target
        if target.triggered:
            # Fast path: skip subscribe() — queue the resumption directly.
            sim._schedule_call(self._resume, target)
        else:
            target.callbacks.append(self._on_event)


class AnyOf(Event):
    """Triggers when any child event triggers; value is (index, value)."""

    __slots__ = ("_children", "_cbs")

    def __init__(self, sim, events):
        super().__init__(sim, name="AnyOf")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        self._cbs = []
        for index, event in enumerate(self._children):
            cb = self._make_cb(index)
            self._cbs.append(cb)
            event.subscribe(cb)

    def _make_cb(self, index):
        def cb(event):
            if self.triggered:
                return
            self._settle(index, event)

        return cb

    def _settle(self, index, event):
        if event._exc is None:
            self.succeed((index, event._value))
        else:
            self.fail(event._exc)
        self._abandon_losers()

    def _abandon_losers(self):
        """Unsubscribe still-pending children once the race is decided.

        Losers used to keep their result callbacks forever — a reference
        leak over long chaos runs, and a loser failing *after* the
        winner was silently swallowed. Pending plain events get the
        module-level :func:`_watch_abandoned` watcher so a late failure
        is routed to ``sim._record_crash``; pending processes need no
        watcher — a process failing with no callbacks records the crash
        itself.
        """
        for child, cb in zip(self._children, self._cbs):
            if not child.triggered:
                try:
                    child.callbacks.remove(cb)
                except ValueError:
                    pass
                if not isinstance(child, Process):
                    child.callbacks.append(_watch_abandoned)
        self._cbs = ()


class AllOf(Event):
    """Triggers when every child event has triggered; value is the list."""

    __slots__ = ("_children", "_pending")

    def __init__(self, sim, events):
        super().__init__(sim, name="AllOf")
        self._children = list(events)
        self._pending = len(self._children)
        if not self._children:
            # Trivially complete.
            self.succeed([])
            return
        for event in self._children:
            event.subscribe(self._on_child)

    def _on_child(self, event):
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            # Same leak/swallow fix as AnyOf: drop our callback from the
            # still-pending children, watch plain events for late failures.
            for child in self._children:
                if not child.triggered:
                    try:
                        child.callbacks.remove(self._on_child)
                    except ValueError:
                        pass
                    if not isinstance(child, Process):
                        child.callbacks.append(_watch_abandoned)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child._value for child in self._children])


class Simulator(object):
    """The event loop: a clock, a now-queue and a heap of pending callbacks.

    See the module docstring for the two-tier scheduler design.
    """

    def __init__(self):
        self.now = 0.0
        self._heap = []  # (when, seq, fn, arg) — future callbacks
        self._ready = deque()  # (seq, fn, arg) — callbacks due *now*
        self._seq = 0
        self.crashed = []  # (process, exception) for unobserved failures
        self.tracer = None  # event sink (repro.obs.Observer or legacy Tracer)
        self.observer = None  # full repro.obs.Observer (spans, profiles)
        self._locks = []  # (scope, lock_class, instance, Mutex) registry
        self.partition = None  # partition name when sharded (sim.parallel)

    def trace(self, category, name, **detail):
        """Emit a trace event when a tracer is attached (else a no-op).

        Hot paths should guard the call site with a single attribute
        check (``if sim.tracer is not None:``) so the kwargs dict is
        never built when tracing is off.
        """
        if self.tracer is not None:
            self.tracer.emit(self.now, category, name, **detail)

    def register_lock(self, scope, lock_class, instance, lock):
        """Record a named lock for contention profiling.

        Registration is unconditional (lock creation is rare); the
        attached observer reads this registry lazily when asked for a
        contention table, so no per-acquisition cost is added.
        """
        self._locks.append((scope, lock_class, instance, lock))

    def registered_locks(self):
        """All locks registered so far: ``(scope, class, instance, lock)``."""
        return list(self._locks)

    def unregister_lock(self, lock):
        """Drop a lock from the contention registry (by identity).

        Used when the guarded object goes away for good (e.g. an
        unlinked inode): a recycled instance key then registers a fresh
        lock instead of aliasing the departed one's stats.
        """
        self._locks = [entry for entry in self._locks if entry[3] is not lock]

    # -- scheduling internals ------------------------------------------

    def _schedule(self, when, fn, arg=None):
        """Queue ``fn(arg)`` at time ``when`` (tuple-dispatched entry)."""
        if when < self.now:
            raise SimulationError("cannot schedule in the past")
        self._seq += 1
        if when == self.now:
            self._ready.append((self._seq, fn, arg))
        else:
            heapq.heappush(self._heap, (when, self._seq, fn, arg))

    def _schedule_call(self, fn, arg=None):
        """Queue ``fn(arg)`` at the current time (now-queue, FIFO)."""
        self._seq += 1
        self._ready.append((self._seq, fn, arg))

    def _schedule_event(self, event):
        """Queue the callback batch of a just-triggered event.

        Callers check ``event.callbacks`` first: an event triggering
        with no subscribers yet schedules nothing (post-trigger
        subscribers queue their own resumption), which keeps uncontended
        lock acquires to a single scheduler entry.
        """
        self._seq += 1
        self._ready.append((self._seq, self._run_callbacks, event))

    def _run_callbacks(self, event):
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def peek_next_time(self):
        """Timestamp of the earliest pending callback, or ``None`` when idle.

        Now-queue entries are due at the current time by definition; the
        heap head carries its own timestamp. Used by the partition
        runtime (``repro.sim.parallel``) to choose the next timestep and
        check it against the safe-time horizon — and generally useful to
        ask "is there anything left before t?" without running.
        """
        if self._ready:
            return self.now
        if self._heap:
            return self._heap[0][0]
        return None

    def schedule_external(self, when, fn, arg=None):
        """Inject an externally-produced callback at absolute time ``when``.

        The cross-partition arrival path: the partition runtime calls
        this for every fabric message delivered from another partition,
        before executing the timestep the message lands in. Injection
        consumes a sequence number exactly like local scheduling, so the
        interleaving of arrivals with same-timestamp local work is fixed
        by the (deterministic) injection order, not by wall-clock
        message timing.
        """
        if when < self.now:
            raise SimulationError(
                "external arrival at t=%r is in the past (now=%r)"
                % (when, self.now)
            )
        self._seq += 1
        if when == self.now:
            self._ready.append((self._seq, fn, arg))
        else:
            heapq.heappush(self._heap, (when, self._seq, fn, arg))

    def _record_crash(self, process, exc):
        self.crashed.append((process, exc))
        raise _CrashHalt()

    def _raise_crash(self):
        process, exc = self.crashed[0]
        raise SimulationError(
            "process %r crashed: %r" % (process.name, exc)
        ) from exc

    # -- public API ------------------------------------------------------

    def event(self, name=None):
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None):
        """Create an event triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator, name=None):
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events):
        """Wait for the first of ``events``; yields ``(index, value)``."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Wait for all ``events``; yields the list of their values."""
        return AllOf(self, events)

    def run(self, until=None):
        """Run events until the queue is empty or the clock passes ``until``.

        Returns the final simulation time. Unobserved process crashes are
        re-raised here so that bugs never pass silently. The crash check
        lives outside the per-event loop body: :meth:`_record_crash`
        unwinds the loop directly via an internal control exception.
        """
        if self.crashed:
            self._raise_crash()
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        try:
            while True:
                if ready:
                    if heap:
                        head = heap[0]
                        # A heap entry at the current time with a lower
                        # sequence number was scheduled first: run it
                        # first, exactly as the one-heap scheduler did.
                        if head[0] <= self.now and head[1] < ready[0][0]:
                            heappop(heap)
                            head[2](head[3])
                            continue
                    entry = ready.popleft()
                    entry[1](entry[2])
                elif heap:
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return self.now
                    head = heappop(heap)
                    self.now = when
                    head[2](head[3])
                else:
                    break
        except _CrashHalt:
            self._raise_crash()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until(self, event, deadline):
        """Run until ``event`` triggers or the clock passes ``deadline``.

        Unlike :meth:`run`, this stops as soon as the event fires — vital
        when daemon loops (flushers, service threads) keep the heap
        non-empty forever. Returns True when the event triggered. On
        timeout the clock is advanced to ``deadline`` (matching
        ``run(until=...)``), so callers never observe a stale clock and
        compute negative remaining time on retry/backoff paths.
        """
        if self.crashed:
            self._raise_crash()
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        try:
            while not event.triggered:
                if ready:
                    if heap:
                        head = heap[0]
                        if head[0] <= self.now and head[1] < ready[0][0]:
                            heappop(heap)
                            head[2](head[3])
                            continue
                    entry = ready.popleft()
                    entry[1](entry[2])
                elif heap:
                    when = heap[0][0]
                    if when > deadline:
                        break
                    head = heappop(heap)
                    self.now = when
                    head[2](head[3])
                else:
                    break
        except _CrashHalt:
            self._raise_crash()
        if event.triggered:
            return True
        if deadline > self.now:
            self.now = deadline
        return False

    def run_process(self, generator, name=None, until=None):
        """Convenience: spawn ``generator``, run until it finishes, return value."""
        process = self.spawn(generator, name=name)
        self.run(until=until)
        if not process.triggered:
            raise SimulationError(
                "process %r did not finish by t=%r" % (process.name, until)
            )
        return process.value
