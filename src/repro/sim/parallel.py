"""Partitioned parallel DES: shard the event loop across OS processes.

The sequential engine (`repro.sim.engine`) runs one event loop on one
core; wall clock is the binding constraint on scenario size. This
module partitions a simulation **per simulated machine** — each
partition owns its own :class:`~repro.sim.engine.Simulator` plus the
entities of one machine (a client host's kernel/pagecache/clients, or
the OSD/MDS cluster) — and runs the partitions concurrently, one OS
process each, synchronized with a classic conservative (null-message /
lookahead) protocol:

* the only cross-partition events are fabric messages, carried by
  :class:`~repro.net.fabric.CrossChannel` endpoints whose ``latency``
  is the conservative *lookahead*: a message sent at time ``t`` is
  delivered at exactly ``t + latency``, and no in-flight message can
  land below the sender's promised clock plus ``latency``;
* each partition repeatedly executes its next *timestep* ``t`` — the
  minimum of its next local event and its earliest buffered arrival —
  but only while ``t`` lies strictly below the **safe-time horizon**
  ``H`` (the minimum channel bound over its in-channels). Blocked
  partitions exchange *null messages* (pure clock promises) until the
  horizon moves;
* a coordinator additionally circulates a global floor (the minimum of
  every partition's promised clock and of all in-flight delivery
  times), which collapses the classic low-lookahead null-message
  livelock: a partition's horizon is never below ``floor + latency``.

**Determinism is the contract.** A partition's schedule depends only on
the sequence of executed timesteps and the arrivals injected before
each — both of which the protocol fixes independently of wall-clock
timing: arrivals below ``H`` are always complete (lookahead), and they
are injected in (delivery time, channel declaration order, send seq)
order before the timestep runs. Hence a partitioned run is
**byte-identical** to the same partition set stepped sequentially in
one process (:func:`run_sequential` vs :func:`run_processes`), which
the schedule-fingerprint tests pin on every reference scenario.

Two execution shapes sit on top:

* **Coupled partitions** (`run_sequential` / `run_processes`) for
  worlds whose machines genuinely exchange fabric RPCs — build each
  partition with channels from :meth:`repro.world.World.partition_plan`
  and the fabric's exported lookahead.
* **Independent machine tasks** (:func:`map_tasks`) — the dominant
  degenerate case: a sweep of simulated machines with *no*
  cross-machine traffic (each bench sweep cell is its own world), where
  lookahead never binds and the partitions are embarrassingly parallel.
  ``map_tasks`` fans the per-machine simulations over a worker pool and
  merges results in declared task order, so the merged record is
  byte-identical to the inline run.

Everything here is pure stdlib (``multiprocessing`` with the ``fork``
start method); payloads crossing process boundaries must pickle.
"""

import os
import time

from repro.common.errors import ConfigError, SimulationError
from repro.net.fabric import ChannelIn, ChannelOut
from repro.sim.engine import Simulator

__all__ = [
    "Partition",
    "Ports",
    "map_tasks",
    "run_partitions",
    "run_processes",
    "run_sequential",
]

_INF = float("inf")


class Partition(object):
    """One shard of a partitioned simulation.

    ``build(sim, ports)`` constructs the partition's entities on the
    fresh simulator — spawning processes, registering channel handlers
    via ``ports.on(name, handler)`` and keeping send endpoints from
    ``ports.out(name)`` — and returns either ``None`` or a zero-arg
    ``finish()`` callable producing the partition's result (plain,
    picklable data) once the run completes.
    """

    def __init__(self, name, build):
        self.name = name
        self.build = build

    def __repr__(self):
        return "<Partition %s>" % self.name


class Ports(object):
    """The channel endpoints handed to a partition's build function."""

    def __init__(self, sim, out_specs, in_specs):
        self._outs = {spec.name: ChannelOut(sim, spec) for spec in out_specs}
        self._in_specs = list(in_specs)
        self._sim = sim
        self.ins = {}

    def out(self, name):
        """The :class:`ChannelOut` of the named outgoing channel."""
        try:
            return self._outs[name]
        except KeyError:
            raise ConfigError("partition has no out-channel %r" % name)

    def on(self, name, handler):
        """Bind ``handler(payload)`` as the named in-channel's delivery
        callback; runs at each message's delivery time."""
        for spec in self._in_specs:
            if spec.name == name:
                self.ins[name] = ChannelIn(self._sim, spec, handler)
                return self.ins[name]
        raise ConfigError("partition has no in-channel %r" % name)

    def _finish_wiring(self):
        missing = [spec.name for spec in self._in_specs
                   if spec.name not in self.ins]
        if missing:
            raise ConfigError(
                "build() left in-channel(s) unhandled: %s"
                % ", ".join(missing)
            )
        # Deterministic drain order: channel declaration order.
        return [self.ins[spec.name] for spec in self._in_specs]


class _Runtime(object):
    """The conservative advance loop for one partition.

    Transport-agnostic: the sequential coupler and the per-process
    worker both drive it. ``round()`` executes at most one timestep and
    reports what happened; the caller moves messages and promises.
    """

    def __init__(self, partition, channels):
        self.partition = partition
        self.sim = Simulator()
        self.sim.partition = partition.name
        out_specs = [ch for ch in channels if ch.src == partition.name]
        in_specs = [ch for ch in channels if ch.dst == partition.name]
        self.ports = Ports(self.sim, out_specs, in_specs)
        self.finish = partition.build(self.sim, self.ports)
        self.ins = self.ports._finish_wiring()
        self.outs = [self.ports._outs[spec.name] for spec in out_specs]
        self.floor = 0.0  # coordinator-circulated global floor
        self.stats = {
            "partition": partition.name,
            "rounds": 0,
            "msgs_in": 0,
            "msgs_out": 0,
            "nulls_in": 0,
            "nulls_out": 0,
            "blocked_waits": 0,
            "busy_s": 0.0,
            "wait_s": 0.0,
        }

    # -- protocol arithmetic ------------------------------------------

    def next_time(self):
        """The next executable timestep: min(local event, arrival)."""
        t = self.sim.peek_next_time()
        t = _INF if t is None else t
        for cin in self.ins:
            earliest = cin.earliest()
            if earliest is not None and earliest < t:
                t = earliest
        return t

    def horizon(self):
        """The safe-time horizon H: min channel bound over in-channels.

        The coordinator floor lifts each bound to at least ``floor +
        latency`` — valid because no partition's clock (hence no send)
        is below the floor.
        """
        horizon = _INF
        for cin in self.ins:
            bound = cin.bound
            lifted = self.floor + cin.spec.latency
            if lifted > bound:
                bound = lifted
            if bound < horizon:
                horizon = bound
        return horizon

    def promise(self):
        """This partition's global-floor contribution: its raw next
        unprocessed timestep.

        Deliberately *not* capped at the horizon. The coordinator
        combines these with the delivery times of every in-flight
        message (Mattern-style accounting), and the minimum of that set
        is the global virtual time: no event below it exists anywhere,
        so every future send delivers at or above it plus the channel's
        lookahead. Using the raw value lets the floor jump straight to
        the next global event instead of climbing in lookahead-sized
        null-message steps — the classic small-lookahead livelock.
        """
        return self.next_time()

    def idle(self):
        """True when nothing is pending locally or buffered."""
        return self.next_time() == _INF

    # -- execution ----------------------------------------------------

    def round(self):
        """Execute one timestep if the horizon allows; returns the
        flushed outbox ``[(channel_name, deliver_at, seq, payload)]`` or
        ``None`` when blocked/idle."""
        t = self.next_time()
        if t == _INF or t >= self.horizon():
            return None
        started = time.perf_counter()
        for cin in self.ins:
            self.stats["msgs_in"] += cin.drain_until(t)
        self.sim.run(until=t)
        self.stats["rounds"] += 1
        out = []
        for cout in self.outs:
            for deliver_at, seq, payload in cout.flush():
                out.append((cout.spec.name, deliver_at, seq, payload))
        self.stats["msgs_out"] += len(out)
        self.stats["busy_s"] += time.perf_counter() - started
        return out

    def result(self):
        value = self.finish() if self.finish is not None else None
        self.stats["events"] = self.sim._seq
        self.stats["final_t"] = self.sim.now
        return value, self.stats


def _validate(partitions, channels):
    names = [p.name for p in partitions]
    if len(set(names)) != len(names):
        raise ConfigError("duplicate partition names: %r" % names)
    known = set(names)
    for ch in channels:
        if ch.src not in known or ch.dst not in known:
            raise ConfigError(
                "channel %r references unknown partition (%s->%s)"
                % (ch.name, ch.src, ch.dst)
            )
        if ch.src == ch.dst:
            raise ConfigError("channel %r loops %s->%s"
                              % (ch.name, ch.src, ch.dst))


def run_sequential(partitions, channels=()):
    """Step a coupled partition set in one process (the reference).

    Repeatedly executes the partition whose next timestep is globally
    minimal — the degenerate single-process schedule every parallel run
    must reproduce byte-for-byte. Returns ``(results, stats_rows)``
    with both keyed in partition declaration order.
    """
    _validate(partitions, list(channels))
    runtimes = [_Runtime(p, channels) for p in partitions]
    by_name = {rt.partition.name: rt for rt in runtimes}
    while True:
        candidates = [rt for rt in runtimes if not rt.idle()]
        if not candidates:
            break
        # Global knowledge makes the coupler trivial: messages are
        # delivered (buffered) immediately, so the global virtual time
        # is exactly the minimum next timestep and is a valid floor —
        # every future send delivers at or above it plus lookahead. The
        # global-min partition is then always safe to run.
        target = min(candidates, key=lambda rt: rt.next_time())
        floor = target.next_time()
        for rt in runtimes:
            if floor > rt.floor:
                rt.floor = floor
        out = target.round()
        if out is None:
            raise SimulationError(
                "conservative deadlock: partition %r blocked at its own "
                "global minimum (zero lookahead?)" % target.partition.name
            )
        for ch_name, deliver_at, seq, payload in out:
            dst = by_name[_dst_of(channels, ch_name)]
            dst.ports.ins[ch_name].push(deliver_at, seq, payload)
    results = {}
    stats = []
    for rt in runtimes:
        value, row = rt.result()
        results[rt.partition.name] = value
        stats.append(row)
    return results, stats


def _dst_of(channels, name):
    for ch in channels:
        if ch.name == name:
            return ch.dst
    raise ConfigError("unknown channel %r" % name)


# -- process mode -----------------------------------------------------


def _worker_main(partition, channels, conn):
    """One partition in its own OS process, hub-coupled via ``conn``.

    Every report to the hub carries the partition's current clock
    promise and its per-channel receive counts; the hub needs the
    latter to know which routed messages are still in flight (their
    delivery times participate in the global floor — Mattern-style
    message accounting).
    """
    rt = _Runtime(partition, channels)

    def counts():
        return {cin.spec.name: cin.received for cin in rt.ins}

    try:
        while True:
            out = rt.round()
            if out is not None:
                conn.send(("out", out, rt.promise(), counts()))
                continue
            # Blocked or idle: publish a null message (promise + receive
            # counts), then wait for the hub to move the horizon.
            rt.stats["blocked_waits"] += 1
            rt.stats["nulls_out"] += 1
            conn.send(("idle" if rt.idle() else "null",
                       rt.promise(), counts()))
            started = time.perf_counter()
            msg = conn.recv()
            rt.stats["wait_s"] += time.perf_counter() - started
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "msg":
                _kind, ch_name, deliver_at, seq, payload = msg
                rt.ports.ins[ch_name].push(deliver_at, seq, payload)
            elif kind == "floor":
                rt.stats["nulls_in"] += 1
                if msg[1] > rt.floor:
                    rt.floor = msg[1]
        value, stats = rt.result()
        conn.send(("result", value, stats))
    except BaseException as err:  # surface the crash at the hub
        conn.send(("crash", "%s: %s" % (type(err).__name__, err)))
        raise


def run_processes(partitions, channels=(), timeout_s=300.0):
    """Run a coupled partition set with one OS process per partition.

    The parent is a pure message hub: it forwards channel messages,
    circulates clock promises as a global floor, and detects
    termination (every partition idle with all in-flight messages
    accounted for). Returns ``(results, stats_rows)`` — byte-identical
    results to :func:`run_sequential` on the same partition set.
    """
    import multiprocessing

    _validate(partitions, list(channels))
    ctx = multiprocessing.get_context("fork")
    pipes = {}
    procs = {}
    for part in partitions:
        parent_end, child_end = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main, args=(part, list(channels), child_end),
            name="sim-%s" % part.name,
        )
        proc.start()
        child_end.close()
        pipes[part.name] = parent_end
        procs[part.name] = proc
    dst_of = {ch.name: ch.dst for ch in channels}
    # Per (dst, channel) FIFO of routed-but-unacknowledged delivery
    # times: these messages are in flight, so their delivery times must
    # participate in the global floor (the receiver's promise cannot
    # account for a message it has not yet seen).
    in_flight = {p.name: {ch.name: [] for ch in channels
                          if ch.dst == p.name}
                 for p in partitions}
    promises = {p.name: 0.0 for p in partitions}
    idle = set()
    results = {}
    stats = []
    floor_sent = -1.0
    deadline = time.monotonic() + timeout_s
    import multiprocessing.connection as mpc

    def ack(name, counts):
        # ``counts`` is the worker's total received per channel; drop
        # that many entries from the front of each in-flight FIFO.
        acked = getattr(ack, "seen", None)
        if acked is None:
            acked = ack.seen = {p.name: {ch.name: 0 for ch in channels
                                         if ch.dst == p.name}
                                for p in partitions}
        for ch_name, total in counts.items():
            fifo = in_flight[name][ch_name]
            fresh = total - acked[name][ch_name]
            if fresh > 0:
                del fifo[:fresh]
                acked[name][ch_name] = total

    try:
        while len(results) < len(partitions):
            if time.monotonic() > deadline:
                raise SimulationError("partitioned run timed out")
            ready = mpc.wait(list(pipes.values()), timeout=1.0)
            for conn in ready:
                name = next(n for n, c in pipes.items() if c is conn)
                try:
                    msg = conn.recv()
                except EOFError:
                    if name not in results:
                        raise SimulationError(
                            "partition %r died before returning a result"
                            % name
                        )
                    continue
                kind = msg[0]
                if kind == "out":
                    _kind, out, promise, counts = msg
                    promises[name] = promise
                    idle.discard(name)
                    ack(name, counts)
                    for ch_name, deliver_at, seq, payload in out:
                        dst = dst_of[ch_name]
                        pipes[dst].send(
                            ("msg", ch_name, deliver_at, seq, payload)
                        )
                        in_flight[dst][ch_name].append(deliver_at)
                        idle.discard(dst)
                elif kind in ("null", "idle"):
                    _kind, promise, counts = msg
                    promises[name] = promise
                    ack(name, counts)
                    if kind == "idle":
                        idle.add(name)
                    else:
                        idle.discard(name)
                elif kind == "result":
                    results[name] = msg[1]
                    stats.append(msg[2])
                elif kind == "crash":
                    raise SimulationError(
                        "partition %r crashed: %s" % (name, msg[1])
                    )
            # Termination: every partition idle and no routed message
            # unacknowledged.
            if len(idle) == len(partitions) and not any(
                fifo for chans in in_flight.values()
                for fifo in chans.values()
            ):
                for conn in pipes.values():
                    conn.send(("stop",))
                idle.clear()
                continue
            floor = min(promises.values()) if promises else _INF
            for chans in in_flight.values():
                for fifo in chans.values():
                    if fifo and fifo[0] < floor:
                        floor = fifo[0]
            if floor > floor_sent and floor != _INF:
                floor_sent = floor
                for name, conn in pipes.items():
                    if name not in results:
                        conn.send(("floor", floor))
    finally:
        for proc in procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
    stats.sort(key=lambda row: [p.name for p in partitions]
               .index(row["partition"]))
    return results, stats


def run_partitions(partitions, channels=(), parallel=True):
    """Run a partition set; OS processes when ``parallel``, else coupled
    sequentially in-process. Same results either way — that equivalence
    is the whole point."""
    if parallel:
        return run_processes(partitions, channels)
    return run_sequential(partitions, channels)


# -- independent machine tasks ---------------------------------------


def _call_task(fn, kwargs):
    started = time.perf_counter()
    value = fn(**kwargs)
    return value, time.perf_counter() - started, os.getpid()


def map_tasks(tasks, workers=0, pool=None):
    """Run independent simulation tasks, in order, optionally in parallel.

    ``tasks`` is ``[(label, fn, kwargs), ...]`` where each ``fn`` is a
    module-level callable building and running its own simulation (one
    simulated machine / sweep cell per task — the no-cross-traffic
    partition case). Results always come back in task order, so the
    merged output is byte-identical to the inline run.

    Returns ``(values, rows)`` where ``rows`` are per-task sync-counter
    rows for the partitions profile table. ``workers <= 1`` (or a
    single task) runs inline; otherwise a ``fork`` process pool is used
    (pass ``pool`` to reuse one across calls).
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        values, rows = [], []
        for label, fn, kwargs in tasks:
            value, wall, pid = _call_task(fn, kwargs)
            values.append(value)
            rows.append({"partition": label, "wall_s": wall, "worker": pid,
                         "mode": "inline"})
        return values, rows
    import multiprocessing

    owned = None
    if pool is None:
        ctx = multiprocessing.get_context("fork")
        owned = pool = ctx.Pool(processes=min(workers, len(tasks)))
    try:
        handles = [
            pool.apply_async(_call_task, (fn, kwargs))
            for _label, fn, kwargs in tasks
        ]
        values, rows = [], []
        for (label, _fn, _kwargs), handle in zip(tasks, handles):
            value, wall, pid = handle.get()
            values.append(value)
            rows.append({"partition": label, "wall_s": wall, "worker": pid,
                         "mode": "fork"})
        return values, rows
    finally:
        if owned is not None:
            owned.close()
            owned.join()
