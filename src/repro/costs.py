"""Central cost model: every simulated CPU/IPC/protocol cost in one place.

The absolute values are calibrated to the order of magnitude of the paper's
testbed (2.4 GHz Opterons, Linux 4.9, 20 Gbps network, ramdisk OSDs); the
*relationships* between them are what reproduce the paper's shapes:

* a FUSE crossing costs two context switches plus queueing, a Danaus IPC
  crossing costs a shared-memory enqueue plus (rarely) one wakeup;
* kernel writeback runs on any activated core, Danaus flushing only on the
  pool's cores;
* the user-level client serialises on one global ``client_lock`` while the
  kernel client uses finer-grained inode locks.

Experiments may tweak individual fields via :meth:`CostModel.replace`.
"""

from repro.common import units

__all__ = ["CostModel"]


class CostModel(object):
    """Bag of cost constants; attributes are documented inline."""

    def __init__(self, **overrides):
        # --- CPU work per operation (seconds) ---------------------------
        #: mode switch in+out of the kernel for one system call
        self.syscall = units.usec(0.6)
        #: direct cost of one context switch (register/TLB state)
        self.context_switch = units.usec(3.0)
        #: scheduling latency until a woken thread runs
        self.wakeup_latency = units.usec(5.0)
        #: generic filesystem op bookkeeping (handle lookup, checks)
        self.fs_op = units.usec(1.0)
        #: per-path-component resolution work (dentry hash + checks)
        self.path_component = units.usec(0.3)
        #: per-page page-cache lookup/insert/mark work
        self.page_op = units.usec(0.15)
        #: per-entry readdir marshalling
        self.dirent_op = units.usec(0.2)

        # --- memory movement ---------------------------------------------
        #: copy bandwidth user<->kernel or between buffers (bytes/s)
        self.memcpy_bandwidth = 8 * units.GIB
        #: page size used by the page cache and dirty accounting
        self.page_size = 4096

        # --- Ceph client protocol ------------------------------------------
        #: client-side protocol work per request (marshalling, osdmap)
        self.ceph_client_op = units.usec(4.0)
        #: checksum/assembly bandwidth applied to payloads client-side
        self.ceph_payload_bandwidth = 4 * units.GIB
        #: stripe unit mapping files onto RADOS-like objects
        self.object_size = units.mib(1)
        #: maximum per-object ops one client keeps in flight when a
        #: striped read/write fans out across OSDs (the objecter's
        #: inflight window); 1 degenerates to fully serial dispatch
        self.client_inflight_ops = 16

        #: bandwidth of kernel-side messenger *send* processing (crc32c +
        #: scatter-gather assembly of flushed pages) executed by host-wide
        #: kworkers for the kernel client. Deliberately low: this is the
        #: work that lands on *any* activated core — the core stealing of
        #: Fig. 1a.
        self.kernel_wq_bandwidth = 256 * units.MIB
        #: bandwidth of kernel-side *receive* processing for sequential
        #: (readahead-pipelined) reads. High: the receive path overlaps
        #: DMA placement into the page cache, which is why the kernel
        #: client wins cold streaming reads (Fig. 11b) even though its
        #: flush path burns foreign cores.
        self.kernel_wq_read_bandwidth = 4 * units.GIB
        #: bandwidth of kernel-side receive processing for *random* reads:
        #: no readahead pipelining, per-request page allocation and crc
        #: verification — the reason the kernel client loses the
        #: out-of-core random-get workload (Fig. 7b).
        self.kernel_wq_rand_read_bandwidth = 512 * units.MIB
        #: number of kworker threads serving the kernel workqueue
        self.nr_kworkers = 4

        # --- server side -----------------------------------------------------
        #: OSD request processing before touching the store
        self.osd_op = units.usec(25.0)
        #: MDS request processing per metadata op
        self.mds_op = units.usec(40.0)
        #: concurrent ops one OSD serves before queueing
        self.osd_concurrency = 8
        #: concurrent ops the MDS serves before queueing
        self.mds_concurrency = 16

        # --- FUSE ------------------------------------------------------------
        #: kernel-side queue management per FUSE crossing direction
        self.fuse_queue_op = units.usec(2.0)
        #: context switches per FUSE round trip (app->daemon, daemon->app)
        self.fuse_switches_per_call = 2
        #: max request payload per FUSE call (forces large I/O splitting)
        self.fuse_max_write = units.kib(128)

        # --- Danaus IPC ---------------------------------------------------
        #: shared-memory circular-queue enqueue/dequeue work
        self.ipc_queue_op = units.usec(0.4)
        #: polling pickup latency when the service thread is awake
        self.ipc_poll_latency = units.usec(1.0)
        #: pending requests in a queue that spawn an extra service thread
        #: (§3.5); 1 means "another request is already waiting while all
        #: current threads are busy"
        self.ipc_backlog_threshold = 1

        # --- union filesystem ------------------------------------------------
        #: per-branch lookup work
        self.union_branch_op = units.usec(0.8)

        # --- locking -----------------------------------------------------------
        #: critical-section CPU inside kernel lock holds (per op)
        self.kernel_lock_section = units.usec(1.5)
        #: critical-section CPU inside the libcephfs client_lock (per op)
        self.client_lock_section = units.usec(2.5)
        #: adaptive locking policy: contention sampling period
        self.lock_adapt_interval = 0.05
        #: contended fraction of an interval's acquisitions above which
        #: the adaptive policy escalates (global -> inode -> range)
        self.lock_escalate_frac = 0.25
        #: acquisitions per interval below which the pool counts as calm
        #: (fine-tier contention cannot predict coarse-tier contention —
        #: that is why the policy escalated — so de-escalation keys on
        #: the op rate dying down instead)
        self.lock_idle_acqs = 16
        #: consecutive calm intervals before the policy de-escalates
        self.lock_calm_rounds = 4

        # --- writeback ---------------------------------------------------------
        #: kernel flusher wakeup interval (paper keeps the 1s default)
        self.writeback_interval = 1.0
        #: dirty expiration age (paper keeps the 5s default)
        self.expire_interval = 5.0
        #: flusher CPU work per flushed page
        self.flush_page_op = units.usec(0.3)
        #: number of kernel flusher threads on the host
        self.nr_flushers = 4
        #: batch size of one flush round per file (bytes)
        self.flush_batch = units.mib(4)

        # --- scheduling quantum ---------------------------------------------
        #: CPU slice used when chopping work onto cores
        self.quantum = units.usec(200)

        # --- fault recovery ---------------------------------------------------
        #: client-side op timeout before a request is declared lost
        self.op_timeout = 0.25
        #: first retry backoff; doubles per attempt (exponential)
        self.retry_backoff = 0.05
        #: ceiling of the exponential backoff
        self.retry_backoff_max = 1.0
        #: attempts before a retryable failure propagates to the caller
        self.retry_attempts = 10
        #: op-timeout reports against one OSD before the monitor marks it
        #: down (the failure-report quorum of the Ceph heartbeat protocol)
        self.osd_failure_reports = 2
        #: sliding window over which failure reports against one OSD are
        #: counted; a single transient blame expires instead of lingering
        #: until the quorum is eventually met
        self.failure_report_window = 5.0
        #: supervisor delay between detecting a service crash and the
        #: restarted service accepting requests again
        self.restart_delay = 0.5

        # --- membership lifecycle (heartbeats / osdmap epochs) ----------------
        #: monitor heartbeat probe period once ``start_heartbeats`` runs
        self.heartbeat_interval = 0.1
        #: missed probes before a silent OSD is marked down (a *suspect*
        #: OSD — blamed by reports — is confirmed down on the next miss)
        self.heartbeat_grace = 3
        #: seconds an OSD stays down before the monitor marks it *out*
        #: and backfill re-replicates its data elsewhere
        self.osd_out_interval = 2.0
        #: down->up transitions within ``flap_window`` that trigger flap
        #: damping (the rejoin is held back for ``flap_probation``)
        self.flap_threshold = 3
        #: sliding window for counting flaps (seconds)
        self.flap_window = 5.0
        #: probation a flapping OSD serves before it may rejoin
        self.flap_probation = 1.0

        # --- metadata HA (MDS ranks / journal / failover) ---------------------
        #: per-record CPU cost of replaying one journal entry during
        #: standby promotion or journal-backed local recovery
        self.mds_replay_op = units.usec(5.0)
        #: period of the standby-replay journal tail (sim seconds)
        self.mds_tail_interval = 0.05
        #: missed monitor probes before an active MDS rank fails over to
        #: a standby (the mds_beacon_grace analogue)
        self.mds_heartbeat_grace = 3

        # --- backfill throttle ------------------------------------------------
        #: pause between backfill scheduler cycles (sim seconds)
        self.backfill_interval = 0.25
        #: recovery bytes one target OSD accepts per backfill cycle
        self.backfill_bytes_per_osd = units.mib(2)
        #: recovery pushes one target OSD accepts per backfill cycle
        self.backfill_ops_per_osd = 8
        #: minimum acting-set size a write needs to proceed degraded
        #: (the pool min_size; writes below it raise DataUnavailable)
        self.pool_min_size = 1

        # --- data integrity / scrub ------------------------------------------
        #: granularity of per-object checksums (bluestore-style per-chunk
        #: digests: a partial overwrite re-digests only touched chunks and
        #: can never "bless" corruption elsewhere in the object)
        self.integrity_chunk_size = 4096
        #: OSD-side digest-check bandwidth during verified reads/scrubs
        #: (blake2b over stored bytes, on the OSD's cores)
        self.integrity_verify_bandwidth = 2 * units.GIB
        #: pause between background scrub cycles (sim seconds)
        self.scrub_interval = 2.0
        #: every Nth scrub cycle is a deep scrub (byte verify); the others
        #: are light metadata scrubs. 0 disables deep cycles.
        self.deep_scrub_every = 2
        #: objects examined per scrub cycle (bounds foreground impact)
        self.scrub_batch = 64
        #: CPU+queue work of one light-scrub metadata probe per replica
        self.scrub_meta_op = units.usec(10.0)
        #: whether scrub repairs corrupt replicas (False: detect/quarantine
        #: only — the equivalent of ``osd_scrub_auto_repair=false``)
        self.scrub_repair = True

        for key, value in overrides.items():
            if not hasattr(self, key):
                raise AttributeError("unknown cost field %r" % key)
            setattr(self, key, value)

    def replace(self, **overrides):
        """A copy of this model with some fields overridden."""
        clone = CostModel()
        clone.__dict__.update(self.__dict__)
        for key, value in overrides.items():
            if not hasattr(clone, key):
                raise AttributeError("unknown cost field %r" % key)
            setattr(clone, key, value)
        return clone

    def copy_cost(self, nbytes):
        """CPU seconds to copy ``nbytes`` across a protection boundary."""
        return nbytes / self.memcpy_bandwidth

    def payload_cost(self, nbytes):
        """Client CPU seconds to checksum/assemble a payload."""
        return nbytes / self.ceph_payload_bandwidth

    def verify_cost(self, nbytes):
        """OSD CPU seconds to digest-check ``nbytes`` of stored data."""
        return nbytes / self.integrity_verify_bandwidth

    def pages_of(self, offset, size):
        """Number of pages covering ``[offset, offset+size)``."""
        if size <= 0:
            return 0
        first = offset // self.page_size
        last = (offset + size - 1) // self.page_size
        return last - first + 1
