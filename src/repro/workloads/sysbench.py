"""Sysbench CPU (SSB): a purely compute-bound neighbour.

Two threads compute primes over 64-bit integers; each request is a fixed
amount of CPU work on the pool's cores, and the metric is request latency
(the paper reports the 99th percentile). SSB does no I/O at all — if its
latency still degrades when a kernel-served Fileserver is colocated, the
cause can only be the kernel stealing its reserved cores (Fig. 6c).
"""

from repro.workloads.base import Workload

__all__ = ["SysbenchCpu"]


class SysbenchCpu(Workload):
    """Fixed-size CPU requests; latency is the primary metric."""

    name = "sysbench"

    def __init__(self, pool, duration=20.0, threads=2,
                 request_cpu=0.002, seed=0):
        # No filesystem involved: fs is None by design.
        super().__init__(None, pool, duration=duration, threads=threads, seed=seed)
        self.request_cpu = request_cpu

    def setup(self, task):
        return
        yield  # pragma: no cover

    def _one_request(self, task):
        yield from task.cpu(self.request_cpu)

    def worker(self, task, worker_id, rng):
        while not self.expired:
            yield from self.timed_op(self._one_request(task))
