"""Filebench Singlestreamwrite/Singlestreamread (Seqwrite/Seqread).

Sequential streaming I/O: every thread owns one file and moves through it
in ``iosize`` chunks. Seqwrite exercises the whole path from application
to backend servers (dirty buffering, flushing, network, OSDs); Seqread —
after a warm-up pass — exercises the *local* path to the client cache,
which is where the user-level client's global ``client_lock`` shows up
(Fig. 9 bottom).
"""

from repro.fs.api import OpenFlags
from repro.workloads.base import Workload

__all__ = ["Seqwrite", "Seqread"]


class Seqwrite(Workload):
    """Each thread streams sequential writes into its own file."""

    name = "seqwrite"

    def __init__(self, fs, pool, duration=20.0, threads=4,
                 file_size=8 * 1024 * 1024, iosize=1 << 20, seed=0,
                 directory="/seq"):
        super().__init__(fs, pool, duration=duration, threads=threads, seed=seed)
        self.file_size = file_size
        self.iosize = iosize
        self.directory = directory

    def setup(self, task):
        yield from self.fs.makedirs(task, self.directory)

    def worker(self, task, worker_id, rng):
        path = "%s/w%02d" % (self.directory, worker_id)
        handle = yield from self.fs.open(
            task, path, OpenFlags.CREAT | OpenFlags.WRONLY | OpenFlags.TRUNC
        )
        chunk = self.payload(self.iosize, worker_id)
        offset = 0
        try:
            while not self.expired:
                yield from self.timed_op(
                    self.fs.write(task, handle, offset, chunk)
                )
                self.result.bytes_written += len(chunk)
                offset += len(chunk)
                if offset >= self.file_size:
                    # Wrap: overwrite from the start (steady streaming).
                    offset = 0
        finally:
            yield from self.fs.close(task, handle)


class Seqread(Workload):
    """Each thread streams sequential reads of its own (cached) file."""

    name = "seqread"

    def __init__(self, fs, pool, duration=20.0, threads=4,
                 file_size=8 * 1024 * 1024, iosize=1 << 20, seed=0,
                 directory="/seq", warm_cache=True, shared_file=False):
        super().__init__(fs, pool, duration=duration, threads=threads, seed=seed)
        self.file_size = file_size
        self.iosize = iosize
        self.directory = directory
        self.warm_cache = warm_cache
        #: all threads stream one hot file (staggered start offsets)
        #: instead of one file each — per-inode locking degenerates to a
        #: single lock again, which is what range locking addresses
        self.shared_file = shared_file

    def _path(self, worker_id):
        return "%s/r%02d" % (self.directory,
                             0 if self.shared_file else worker_id)

    def setup(self, task):
        yield from self.fs.makedirs(task, self.directory)
        n_files = 1 if self.shared_file else self.threads
        for worker_id in range(n_files):
            path = "%s/r%02d" % (self.directory, worker_id)
            data = self.payload(self.file_size, worker_id)
            yield from self.fs.write_file(task, path, data, sync=True)
            if self.warm_cache:
                yield from self.fs.read_file(task, path)

    def worker(self, task, worker_id, rng):
        path = self._path(worker_id)
        handle = yield from self.fs.open(task, path)
        offset = 0
        if self.shared_file and self.threads:
            # Stagger start offsets (iosize-aligned) so the threads sweep
            # disjoint regions of the shared file most of the time.
            offset = (worker_id * (self.file_size // self.threads)
                      // self.iosize) * self.iosize
        try:
            while not self.expired:
                data = yield from self.timed_op(
                    self.fs.read(task, handle, offset, self.iosize)
                )
                self.result.bytes_read += len(data)
                offset += len(data)
                if offset >= self.file_size or not data:
                    offset = 0
        finally:
            yield from self.fs.close(task, handle)
