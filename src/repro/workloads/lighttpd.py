"""Lighttpd container startup (Fig. 8).

Starting a webserver container generates three kinds of I/O (§6.3.1):

* the ``exec`` of the initial command — kernel-initiated, so on Danaus it
  takes the (legacy) FUSE path;
* ``mmap`` of the dynamic libraries — also kernel-initiated;
* user-level reads/writes preparing the application files (config parse,
  pid file, priming the document root).

``start_lighttpd`` performs exactly that sequence against one container;
:class:`LighttpdFleet` starts N cloned containers concurrently and reports
the *real time* until all of them are waiting for requests.
"""

__all__ = ["start_lighttpd", "LighttpdFleet"]


def start_lighttpd(container, image):
    """Boot one Lighttpd container; sim generator returning elapsed time.

    ``image`` is the :class:`~repro.containers.images.Image` the container
    was cloned from (used to locate binaries and libraries).
    """
    sim = container.pool.sim
    task = container.new_task("init")
    started = sim.now
    files = image.flat()
    # 1. exec of the server binary (legacy path).
    binary = "/usr/sbin/lighttpd" if "/usr/sbin/lighttpd" in files else "/bin/init"
    yield from container.exec_read(task, binary)
    # 2. mmap of every shared library (legacy path).
    for path in sorted(files):
        if path.startswith("/lib/") and path.endswith(".so"):
            yield from container.mount.exec_read(task, path)
    # 3. user-level application preparation.
    fs = container.fs
    config = "/etc/lighttpd/lighttpd.conf"
    if config in files:
        yield from fs.read_file(task, config)
    yield from fs.makedirs(task, "/var/run")
    yield from fs.write_file(
        task, "/var/run/lighttpd.pid", b"%d" % task.pid
    )
    # Prime a few document-root files (server warms its stat cache).
    www = [path for path in sorted(files) if path.startswith("/var/www/")][:4]
    for path in www:
        yield from fs.read_file(task, path)
    yield from fs.write_file(
        task, "/var/log/lighttpd.access.log", b""
    )
    return sim.now - started


class LighttpdFleet(object):
    """Start N cloned Lighttpd containers and time the whole fleet."""

    def __init__(self, containers, image):
        self.containers = containers
        self.image = image
        self.per_container = []
        self.real_time = None

    def run(self):
        """Sim generator: boots all containers concurrently."""
        if not self.containers:
            self.real_time = 0.0
            return 0.0
        sim = self.containers[0].pool.sim
        started = sim.now
        boots = [
            sim.spawn(start_lighttpd(container, self.image), name="boot")
            for container in self.containers
        ]
        self.per_container = yield sim.all_of(boots)
        self.real_time = sim.now - started
        return self.real_time
