"""Serverless function invocations over per-tenant storage (§9).

The paper proposes "to explore the applicability of the Danaus client in
per-tenant storage provisioning for serverless function computations".
This workload models that setting:

* each tenant owns a set of *functions* (handler code deployed on the
  tenant's root filesystem);
* a **cold** invocation loads the handler through the kernel-initiated
  path (exec/mmap — Danaus's legacy FUSE endpoint), then reads its input
  and writes its result;
* a **warm** invocation reuses the loaded sandbox and only performs the
  input/output I/O plus compute.

The interesting metric is invocation latency — especially its tail under
noisy neighbours, where per-tenant user-level clients should keep
functions steady while a kernel-shared client lets the neighbour in.
"""

from repro.workloads.base import Workload

__all__ = ["ServerlessTenant"]


class ServerlessTenant(Workload):
    """One tenant invoking its functions cold and warm."""

    name = "serverless"

    def __init__(self, mount, pool, duration=5.0, threads=2, n_functions=4,
                 handler_size=48 * 1024, state_size=16 * 1024,
                 compute_cpu=0.0005, warm_fraction=0.7, seed=0):
        super().__init__(mount.fs, pool, duration=duration, threads=threads,
                         seed=seed)
        self.mount = mount
        self.n_functions = n_functions
        self.handler_size = handler_size
        self.state_size = state_size
        self.compute_cpu = compute_cpu
        self.warm_fraction = warm_fraction
        self.cold_latency = self.metrics.histogram("cold")
        self.warm_latency = self.metrics.histogram("warm")
        self._loaded = set()  # warm sandboxes (function ids)

    def _handler_path(self, function_id):
        return "/functions/f%02d/handler.bin" % function_id

    def setup(self, task):
        yield from self.fs.makedirs(task, "/functions")
        yield from self.fs.makedirs(task, "/invocations")
        for function_id in range(self.n_functions):
            yield from self.fs.makedirs(task, "/functions/f%02d" % function_id)
            yield from self.fs.write_file(
                task, self._handler_path(function_id),
                self.payload(self.handler_size, ("handler", function_id)),
            )

    def _invoke(self, task, worker_id, function_id, rng, sequence):
        started = self.sim.now
        cold = function_id not in self._loaded
        if cold:
            # Sandbox start: the runtime execs the handler binary, which
            # is kernel-initiated I/O (the Danaus legacy path).
            yield from self.mount.exec_read(task, self._handler_path(function_id))
            self._loaded.add(function_id)
        # Input fetch, compute, result store — the user-level path.
        input_path = "/functions/f%02d/handler.bin" % function_id
        handle = yield from self.fs.open(task, input_path)
        try:
            yield from self.fs.read(task, handle, 0, self.state_size)
        finally:
            yield from self.fs.close(task, handle)
        yield from task.cpu(self.compute_cpu)
        result = self.payload(self.state_size, ("result", worker_id, sequence))
        yield from self.fs.write_file(
            task, "/invocations/w%02d-%06d" % (worker_id, sequence), result
        )
        elapsed = self.sim.now - started
        (self.cold_latency if cold else self.warm_latency).observe(elapsed)
        self.result.bytes_written += self.state_size

    def worker(self, task, worker_id, rng):
        sequence = 0
        while not self.expired:
            function_id = rng.randrange(self.n_functions)
            if rng.random() > self.warm_fraction:
                self._loaded.discard(function_id)  # sandbox evicted
            yield from self.timed_op(
                self._invoke(task, worker_id, function_id, rng, sequence)
            )
            sequence += 1
