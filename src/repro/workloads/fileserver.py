"""Filebench Fileserver (FLS): the paper's primary contention workload.

Emulates a simple file server: a personality mixing whole-file writes,
appends, whole-file reads, deletes and stats over a directory of files
with a given mean size (Filebench's ``fileserver.f``). The paper runs it
with 5 MB mean size and 1000 files over Ceph; we keep the op mix and the
files-per-thread ratio and scale byte sizes (recorded per experiment).
"""

from repro.common.errors import FsError
from repro.fs.api import OpenFlags
from repro.workloads.base import Workload

__all__ = ["Fileserver"]


class Fileserver(Workload):
    """create/write -> open/append -> open/read -> delete -> stat mix."""

    name = "fileserver"

    def __init__(self, fs, pool, duration=20.0, threads=8, nfiles=100,
                 mean_size=64 * 1024, append_size=16 * 1024, iosize=64 * 1024,
                 seed=0, directory="/flsdata"):
        super().__init__(fs, pool, duration=duration, threads=threads, seed=seed)
        self.nfiles = nfiles
        self.mean_size = mean_size
        self.append_size = append_size
        self.iosize = iosize
        self.directory = directory

    def _file_path(self, index):
        return "%s/f%05d" % (self.directory, index)

    def _file_size(self, rng):
        # Filebench uses a gamma distribution around the mean; a uniform
        # 0.5x-1.5x band keeps the same mean with bounded memory.
        return max(int(self.mean_size * rng.uniform(0.5, 1.5)), 4096)

    def setup(self, task):
        yield from self.fs.makedirs(task, self.directory)
        # Pre-populate half the files so reads/deletes find work at once.
        for index in range(0, self.nfiles, 2):
            data = self.payload(self._file_size_from_index(index), index)
            yield from self.fs.write_file(task, self._file_path(index), data)

    def _file_size_from_index(self, index):
        from repro.common.rng import make_rng

        return self._file_size(make_rng(self.seed, "fls-size", index))

    def _write_whole(self, task, index, rng):
        data = self.payload(self._file_size(rng), index)
        yield from self.fs.write_file(task, self._file_path(index), data)
        self.result.bytes_written += len(data)

    def _append(self, task, index):
        try:
            handle = yield from self.fs.open(
                task, self._file_path(index), OpenFlags.WRONLY | OpenFlags.APPEND
            )
        except FsError:
            return
        try:
            data = self.payload(self.append_size, ("append", index))
            yield from self.fs.write(task, handle, 0, data)
            self.result.bytes_written += len(data)
        finally:
            yield from self.fs.close(task, handle)

    def _read_whole(self, task, index):
        try:
            handle = yield from self.fs.open(task, self._file_path(index))
        except FsError:
            return
        try:
            offset = 0
            while True:
                data = yield from self.fs.read(task, handle, offset, self.iosize)
                if not data:
                    break
                offset += len(data)
                self.result.bytes_read += len(data)
        finally:
            yield from self.fs.close(task, handle)

    def _delete(self, task, index):
        try:
            yield from self.fs.unlink(task, self._file_path(index))
        except FsError:
            pass

    def _stat(self, task, index):
        try:
            yield from self.fs.stat(task, self._file_path(index))
        except FsError:
            pass

    def worker(self, task, worker_id, rng):
        while not self.expired:
            index = rng.randrange(self.nfiles)
            yield from self.timed_op(self._write_whole(task, index, rng))
            if self.expired:
                break
            index = rng.randrange(self.nfiles)
            yield from self.timed_op(self._append(task, index))
            if self.expired:
                break
            index = rng.randrange(self.nfiles)
            yield from self.timed_op(self._read_whole(task, index))
            if self.expired:
                break
            index = rng.randrange(self.nfiles)
            yield from self.timed_op(self._delete(task, index))
            index = rng.randrange(self.nfiles)
            yield from self.timed_op(self._stat(task, index))
