"""Fileappend and Fileread: the paper's own scaleup micro-workloads.

High-data / low-metadata benchmarks run inside cloned containers over a
union with a shared lower branch (§6.3.2, Fig. 11):

* **Fileappend** opens a large shared file ``O_WRONLY|O_APPEND``, writes
  1 MB and closes it. The copy-on-write union must first copy the whole
  file up to the private branch, so the generated I/O is ~50/50
  read/write — the union tax in its purest form.
* **Fileread** opens the shared file ``O_RDONLY``, reads it fully in 1 MB
  blocks, and closes it. Pure shared-read: what matters is who caches the
  single shared copy, and once.
"""

from repro.fs.api import OpenFlags
from repro.workloads.base import Workload

__all__ = ["Fileappend", "Fileread"]


class Fileappend(Workload):
    """Open a shared file O_APPEND, append ``append_size``, close."""

    name = "fileappend"

    def __init__(self, fs, pool, path="/shared.bin", append_size=1 << 20,
                 seed=0):
        super().__init__(fs, pool, duration=None, threads=1, seed=seed)
        self.path = path
        self.append_size = append_size

    def worker(self, task, worker_id, rng):
        handle = yield from self.timed_op(
            self.fs.open(task, self.path, OpenFlags.WRONLY | OpenFlags.APPEND)
        )
        data = self.payload(self.append_size, "append")
        yield from self.timed_op(self.fs.write(task, handle, 0, data))
        self.result.bytes_written += len(data)
        yield from self.timed_op(self.fs.close(task, handle))


class Fileread(Workload):
    """Open the shared file, stream it fully in ``iosize`` blocks, close."""

    name = "fileread"

    def __init__(self, fs, pool, path="/shared.bin", iosize=1 << 20, seed=0):
        super().__init__(fs, pool, duration=None, threads=1, seed=seed)
        self.path = path
        self.iosize = iosize

    def worker(self, task, worker_id, rng):
        handle = yield from self.timed_op(self.fs.open(task, self.path))
        offset = 0
        while True:
            data = yield from self.timed_op(
                self.fs.read(task, handle, offset, self.iosize)
            )
            if not data:
                break
            offset += len(data)
            self.result.bytes_read += len(data)
        yield from self.timed_op(self.fs.close(task, handle))
