"""A miniature RocksDB: LSM key-value store over a mounted filesystem.

Reproduces the I/O *pattern* of the paper's RocksDB experiments (§6.3.1):

* ``put``: append to a write-ahead log, insert into the memtable; a full
  memtable is flushed in the background to a sorted-string-table (SST)
  file; too many L0 SSTs trigger a compaction that reads several tables
  and writes a merged one. Net effect: sequential writes plus periodic
  read-modify-write bursts — exactly what stresses write-behind caching
  and kernel writeback.
* ``get``: memtable, then SSTs newest-first via their in-memory indexes —
  random reads that, out-of-core, miss the cache and hit the backend.

The store is fully functional: values round-trip bit-exactly through the
WAL/memtable/SST machinery.
"""

from collections import deque

from repro.fs.api import OpenFlags
from repro.sim.sync import Semaphore
from repro.workloads.base import Workload

__all__ = ["MiniRocksDB", "RocksDbPut", "RocksDbGet"]


class _SsTable(object):
    """One on-disk sorted table plus its in-memory index."""

    __slots__ = ("path", "index", "size", "sequence")

    def __init__(self, path, index, size, sequence):
        self.path = path
        self.index = index  # key -> (offset, length)
        self.size = size
        # Ordering epoch: higher sequences hold newer versions of a key.
        self.sequence = sequence


class MiniRocksDB(object):
    """LSM store: WAL + memtable + levelled SSTs + background jobs."""

    #: Write stall threshold: puts block while this many immutable
    #: memtables await flushing (RocksDB's max_write_buffer_number).
    MAX_IMMUTABLES = 2

    def __init__(self, fs, pool, directory="/rocksdb",
                 memtable_bytes=4 * 1024 * 1024, compaction_threads=2,
                 l0_compaction_trigger=4, sync_sst=False, wal_sync=False):
        self.fs = fs
        self.pool = pool
        self.sim = pool.sim
        self.directory = directory
        self.memtable_limit = memtable_bytes
        self.l0_trigger = l0_compaction_trigger
        # RocksDB's default durability: SST writes rely on OS writeback
        # (no fsync on the hot path); sync_sst=True forces it. wal_sync
        # makes each put durable (WriteOptions.sync) — the configuration
        # whose per-put latency actually exercises the client I/O path,
        # which is what Fig. 7's large per-client differences imply.
        self.sync_sst = sync_sst
        self.wal_sync = wal_sync
        self._stall_waiters = []
        self.memtable = {}
        self.memtable_size = 0
        self.immutables = deque()  # flushed-pending memtables
        self.sstables = []  # newest first (descending sequence)
        self._next_file = 0  # SST filename counter
        self._next_seq = 0  # key-version ordering epoch
        self._wal_seq = 0
        self._wal_handle = None
        self._wal_offset = 0
        self._background = Semaphore(self.sim, compaction_threads, name="rdb-bg")
        self._pending_jobs = []
        self.stats = {"flushes": 0, "compactions": 0, "wal_bytes": 0}

    # -- lifecycle -----------------------------------------------------------

    def open(self, task):
        """Open (or recover) the store.

        Recovery mirrors RocksDB's startup: registered SST files are
        re-indexed from their persisted index blocks and surviving WAL
        records are replayed into a fresh memtable — so a store reopened
        by another process (or on another host after a migration) serves
        every durable key.
        """
        yield from self.fs.makedirs(task, self.directory)
        yield from self._recover(task)
        yield from self._open_wal(task)

    def _recover(self, task):
        if self.sstables or self.memtable:
            return  # already live in this instance
        names = yield from self.fs.readdir(task, self.directory)
        # 1. SSTs: the persisted index block carries the ordering epoch.
        for name in (n for n in names if n.endswith(".sst")):
            path = "%s/%s" % (self.directory, name)
            index_blob = yield from self.fs.read_file(task, path + ".idx")
            if not index_blob:
                continue
            lines = index_blob.decode("utf-8").splitlines()
            sequence = int(lines[0].split()[1])  # "#seq N" header
            index = {}
            size = 0
            for line in lines[1:]:
                key, offset, length = line.rsplit(" ", 2)
                index[key] = (int(offset), int(length))
                size += int(length)
            self._register_sst(_SsTable(path, index, size, sequence))
            self._next_seq = max(self._next_seq, sequence)
            fileno = int(name[len("sst-"):-len(".sst")])
            self._next_file = max(self._next_file, fileno)
        # 2. WAL replay: oldest first so newer records win.
        wals = sorted(n for n in names if n.startswith("wal-"))
        for name in wals:
            blob = yield from self.fs.read_file(
                task, "%s/%s" % (self.directory, name)
            )
            position = 0
            while position + 8 <= len(blob):
                key_len = int.from_bytes(blob[position:position + 4], "big")
                value_len = int.from_bytes(blob[position + 4:position + 8], "big")
                start = position + 8
                end = start + key_len + value_len
                if end > len(blob):
                    break  # torn tail record
                key = blob[start:start + key_len].decode("utf-8")
                value = bytes(blob[start + key_len:end])
                self.memtable[key] = value
                self.memtable_size += end - position
                position = end
            sequence = int(name[len("wal-"):-len(".log")])
            self._wal_seq = max(self._wal_seq, sequence)

    def _open_wal(self, task):
        self._wal_seq += 1
        path = "%s/wal-%06d.log" % (self.directory, self._wal_seq)
        self._wal_path = path
        self._wal_handle = yield from self.fs.open(
            task, path, OpenFlags.CREAT | OpenFlags.WRONLY | OpenFlags.TRUNC
        )
        self._wal_offset = 0

    def close(self, task):
        """Flush everything and wait for background jobs."""
        if self.memtable:
            yield from self._rotate(task)
        while self._pending_jobs:
            jobs, self._pending_jobs = self._pending_jobs, []
            yield self.sim.all_of(jobs)
        if self._wal_handle is not None:
            yield from self.fs.close(task, self._wal_handle)
            self._wal_handle = None

    # -- write path ------------------------------------------------------------

    def _encode(self, key, value):
        key_bytes = key if isinstance(key, bytes) else key.encode()
        header = len(key_bytes).to_bytes(4, "big") + len(value).to_bytes(4, "big")
        return header + key_bytes + value

    def put(self, task, key, value):
        """Insert/overwrite one pair; sim generator.

        Stalls (like RocksDB's write stalls) while too many immutable
        memtables are waiting on background flushes — this is how slow
        backend flushing surfaces in put latency.
        """
        while len(self.immutables) >= self.MAX_IMMUTABLES:
            stall = self.sim.event(name="rdb-stall")
            self._stall_waiters.append(stall)
            yield stall
        record = self._encode(key, value)
        yield from self.fs.write(task, self._wal_handle, self._wal_offset, record)
        if self.wal_sync:
            yield from self.fs.fsync(task, self._wal_handle)
        self._wal_offset += len(record)
        self.stats["wal_bytes"] += len(record)
        self.memtable[key] = value
        self.memtable_size += len(record)
        if self.memtable_size >= self.memtable_limit:
            yield from self._rotate(task)

    def _rotate(self, task):
        frozen = self.memtable
        self.memtable = {}
        self.memtable_size = 0
        self.immutables.append(frozen)
        retired_wal = self._wal_path
        # The ordering epoch is fixed at freeze time: concurrent background
        # flushes may complete out of order, but key versions may not.
        self._next_seq += 1
        sequence = self._next_seq
        yield from self.fs.close(task, self._wal_handle)
        yield from self._open_wal(task)
        job_task = self.pool.new_task("rdb.flush")
        self._pending_jobs.append(
            self.sim.spawn(
                self._flush_job(job_task, frozen, sequence, retired_wal),
                name="rdb-flush",
            )
        )

    def _flush_job(self, task, frozen, sequence, retired_wal=None):
        from repro.common.errors import FsError

        yield self._background.acquire()
        try:
            yield from self._write_sst(task, frozen, sequence)
            self.stats["flushes"] += 1
            if retired_wal is not None:
                # The WAL's records are durable in the SST now; keeping it
                # would let recovery replay stale values over newer data.
                try:
                    yield from self.fs.unlink(task, retired_wal)
                except FsError:
                    pass
            if self._l0_count() >= self.l0_trigger:
                yield from self._compact(task)
        finally:
            self._background.release()
            if frozen in self.immutables:
                self.immutables.remove(frozen)
            waiters, self._stall_waiters = self._stall_waiters, []
            for event in waiters:
                event.succeed()

    def _register_sst(self, table):
        """Insert keeping the newest-first (descending sequence) order."""
        position = 0
        while (position < len(self.sstables)
               and self.sstables[position].sequence > table.sequence):
            position += 1
        self.sstables.insert(position, table)

    def _write_sst(self, task, table, sequence):
        self._next_file += 1
        path = "%s/sst-%06d.sst" % (self.directory, self._next_file)
        handle = yield from self.fs.open(
            task, path, OpenFlags.CREAT | OpenFlags.WRONLY | OpenFlags.TRUNC
        )
        index = {}
        offset = 0
        try:
            for key in sorted(table):
                value = table[key]
                yield from self.fs.write(task, handle, offset, value)
                index[key] = (offset, len(value))
                offset += len(value)
            if self.sync_sst:
                yield from self.fs.fsync(task, handle)
        finally:
            yield from self.fs.close(task, handle)
        # Persist the index block (with the ordering epoch) so a reopened
        # store can recover the SST.
        index_blob = ("#seq %d\n" % sequence + "\n".join(
            "%s %d %d" % (key, off, length)
            for key, (off, length) in sorted(index.items())
        )).encode("utf-8")
        yield from self.fs.write_file(task, path + ".idx", index_blob)
        self._register_sst(_SsTable(path, index, offset, sequence))
        return path

    def _l0_count(self):
        return len(self.sstables)

    def _compact(self, task):
        """Merge the oldest half of the tables into one."""
        if len(self.sstables) < 2:
            return
        victims = self.sstables[len(self.sstables) // 2:]
        self.sstables = self.sstables[:len(self.sstables) // 2]
        merged = {}
        for table in reversed(victims):  # oldest first; newer keys win
            handle = yield from self.fs.open(task, table.path)
            try:
                for key, (offset, length) in table.index.items():
                    value = yield from self.fs.read(task, handle, offset, length)
                    merged[key] = value
            finally:
                yield from self.fs.close(task, handle)
        # The merged table inherits the newest victim epoch: it is newer
        # than everything it absorbed and older than every survivor.
        yield from self._write_sst(
            task, merged, max(table.sequence for table in victims)
        )
        from repro.common.errors import FsError

        for table in victims:
            yield from self.fs.unlink(task, table.path)
            try:
                yield from self.fs.unlink(task, table.path + ".idx")
            except FsError:
                pass
        self.stats["compactions"] += 1

    # -- read path ----------------------------------------------------------------

    def get(self, task, key):
        """Point lookup; sim generator returning the value or None."""
        if key in self.memtable:
            return self.memtable[key]
        for frozen in reversed(self.immutables):
            if key in frozen:
                return frozen[key]
        for table in self.sstables:
            entry = table.index.get(key)
            if entry is None:
                continue
            offset, length = entry
            handle = yield from self.fs.open(task, table.path)
            try:
                value = yield from self.fs.read(task, handle, offset, length)
            finally:
                yield from self.fs.close(task, handle)
            return value
        return None


class RocksDbPut(Workload):
    """The paper's put workload: one thread inserting random pairs."""

    name = "rocksdb-put"

    def __init__(self, fs, pool, total_bytes=16 * 1024 * 1024,
                 value_size=128 * 1024, threads=1, seed=0,
                 directory="/rocksdb", memtable_bytes=4 * 1024 * 1024,
                 wal_sync=True):
        super().__init__(fs, pool, duration=None, threads=threads, seed=seed)
        self.total_bytes = total_bytes
        self.value_size = value_size
        self.db = MiniRocksDB(
            fs, pool, directory=directory, memtable_bytes=memtable_bytes,
            wal_sync=wal_sync,
        )
        self._inserted = 0

    def setup(self, task):
        yield from self.db.open(task)

    def worker(self, task, worker_id, rng):
        per_thread = self.total_bytes // self.threads
        written = 0
        while written < per_thread:
            key = "k%09d" % rng.randrange(10 ** 9)
            value = self.payload(self.value_size, ("v", worker_id, written))
            yield from self.timed_op(self.db.put(task, key, value))
            written += self.value_size
            self.result.bytes_written += self.value_size
            self._inserted += 1
        if worker_id == 0:
            yield from self.db.close(task)


class RocksDbGet(Workload):
    """Out-of-core read workload: populate, then random gets."""

    name = "rocksdb-get"

    def __init__(self, fs, pool, populate_bytes=16 * 1024 * 1024,
                 read_bytes=None, value_size=128 * 1024, threads=1, seed=0,
                 directory="/rocksdb", memtable_bytes=4 * 1024 * 1024):
        super().__init__(fs, pool, duration=None, threads=threads, seed=seed)
        self.populate_bytes = populate_bytes
        self.read_bytes = read_bytes if read_bytes is not None else populate_bytes
        self.value_size = value_size
        self.db = MiniRocksDB(
            fs, pool, directory=directory, memtable_bytes=memtable_bytes
        )
        self.keys = []

    def setup(self, task):
        yield from self.db.open(task)
        written = 0
        index = 0
        while written < self.populate_bytes:
            key = "k%09d" % index
            index += 1
            value = self.payload(self.value_size, ("p", index))
            yield from self.db.put(task, key, value)
            self.keys.append(key)
            written += self.value_size
        yield from self.db.close(task)
        yield from self.db.open(task)

    def worker(self, task, worker_id, rng):
        per_thread = self.read_bytes // self.threads
        read = 0
        while read < per_thread:
            key = self.keys[rng.randrange(len(self.keys))]
            value = yield from self.timed_op(self.db.get(task, key))
            if value is not None:
                read += len(value)
                self.result.bytes_read += len(value)
            else:
                self.result.errors += 1
                read += self.value_size
        if worker_id == 0:
            yield from self.db.close(task)
