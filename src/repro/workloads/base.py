"""Workload scaffolding: threads, duration control, result collection.

Each workload mirrors one generator from the paper's Table 2. A workload
binds to a mounted filesystem and a container pool, spawns its worker
threads (pool-confined), runs for a fixed duration or amount of work, and
reports ops/s, bytes/s and latency percentiles through a
:class:`WorkloadResult`.
"""

from repro.common.rng import make_rng, pseudo_bytes
from repro.metrics import MetricSet

__all__ = ["WorkloadResult", "Workload"]


class WorkloadResult(object):
    """Outcome of one workload instance."""

    def __init__(self, name):
        self.name = name
        self.ops = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.metrics = MetricSet(name)
        self.latency = self.metrics.histogram("latency")
        self.started_at = None
        self.finished_at = None
        self.errors = 0

    @property
    def duration(self):
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def ops_per_sec(self):
        return self.ops / self.duration if self.duration > 0 else 0.0

    @property
    def bytes_per_sec(self):
        total = self.bytes_read + self.bytes_written
        return total / self.duration if self.duration > 0 else 0.0

    def __repr__(self):
        return "<WorkloadResult %s ops=%d %.1f ops/s>" % (
            self.name, self.ops, self.ops_per_sec,
        )


class Workload(object):
    """Base class: spawn workers, bound the run, collect results."""

    name = "workload"

    def __init__(self, fs, pool, duration=None, threads=1, seed=0):
        self.fs = fs
        self.pool = pool
        self.sim = pool.sim
        self.duration = duration
        self.threads = threads
        self.seed = seed
        self.result = WorkloadResult(self.name)
        self.metrics = MetricSet(self.name)
        self._deadline = None

    # -- subclass hooks -----------------------------------------------------

    def setup(self, task):
        """One-time preparation (dataset population). Sim generator."""
        return
        yield  # pragma: no cover

    def worker(self, task, worker_id, rng):
        """The per-thread loop. Sim generator."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- driver ----------------------------------------------------------------

    @property
    def expired(self):
        """True once the workload's duration budget is exhausted."""
        return self._deadline is not None and self.sim.now >= self._deadline

    def timed_op(self, gen):
        """Run one operation, recording its latency; returns its value."""
        start = self.sim.now
        value = yield from gen
        self.result.latency.observe(self.sim.now - start)
        self.result.ops += 1
        return value

    def run(self):
        """Execute setup then all workers; sim generator returning the result."""
        setup_task = self.pool.new_task("%s.setup" % self.name)
        yield from self.setup(setup_task)
        self.result.started_at = self.sim.now
        if self.duration is not None:
            self._deadline = self.sim.now + self.duration
        workers = []
        for worker_id in range(self.threads):
            task = self.pool.new_task("%s.w%d" % (self.name, worker_id))
            rng = make_rng(self.seed, self.name, self.pool.name, worker_id)
            workers.append(
                self.sim.spawn(
                    self.worker(task, worker_id, rng),
                    name="%s.w%d" % (self.name, worker_id),
                )
            )
        if workers:
            yield self.sim.all_of(workers)
        self.result.finished_at = self.sim.now
        return self.result

    def start(self):
        """Spawn :meth:`run` as a process (for colocated workloads)."""
        return self.sim.spawn(self.run(), name=self.name)

    # -- helpers ---------------------------------------------------------------

    def payload(self, size, tag):
        """Deterministic file contents of ``size`` bytes."""
        return pseudo_bytes(size, (self.seed, self.name, tag))
