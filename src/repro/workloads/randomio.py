"""Stress-ng RandomIO (RND): the paper's noisy-neighbour generator.

Two threads issue 512-byte random reads and writes (with readahead
enabled) against a 1 GB file on local ext4/RAID-0. Its damage mechanism —
demonstrated in Fig. 1 — is indirect: the random writes keep the kernel's
*shared* flusher threads busy against slow positioning-bound disks, the
readahead floods the *shared* page cache, and the op stream hammers the
*shared* kernel locks. A kernel-served neighbour collapses; Danaus does
not care.
"""

from repro.fs.api import OpenFlags
from repro.workloads.base import Workload

__all__ = ["RandomIO"]


class RandomIO(Workload):
    """512-byte random read/write mix over one preallocated file."""

    name = "randomio"

    def __init__(self, fs, pool, duration=20.0, threads=2,
                 file_size=32 * 1024 * 1024, iosize=512, write_fraction=0.5,
                 seed=0, path="/rndfile", batch_cpu=0.0):
        super().__init__(fs, pool, duration=duration, threads=threads, seed=seed)
        self.file_size = file_size
        self.iosize = iosize
        self.write_fraction = write_fraction
        self.path = path
        # Coarsening knob: stress-ng's submission loop keeps its cores at
        # ~100% issuing hundreds of thousands of tiny syscalls per second.
        # The simulator cannot afford one event per real syscall, so each
        # simulated I/O represents a batch and charges ``batch_cpu``
        # seconds of CPU for the loop work it stands in for.
        self.batch_cpu = batch_cpu

    def setup(self, task):
        data = self.payload(self.file_size, "prealloc")
        yield from self.fs.write_file(task, self.path, data, sync=True)

    def worker(self, task, worker_id, rng):
        handle = yield from self.fs.open(task, self.path, OpenFlags.RDWR)
        block = self.payload(self.iosize, ("w", worker_id))
        try:
            while not self.expired:
                if self.batch_cpu > 0:
                    yield from task.cpu(self.batch_cpu)
                offset = rng.randrange(0, self.file_size - self.iosize)
                if rng.random() < self.write_fraction:
                    yield from self.timed_op(
                        self.fs.write(task, handle, offset, block)
                    )
                    self.result.bytes_written += self.iosize
                else:
                    data = yield from self.timed_op(
                        self.fs.read(task, handle, offset, self.iosize)
                    )
                    self.result.bytes_read += len(data)
        finally:
            yield from self.fs.close(task, handle)
