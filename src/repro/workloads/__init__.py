"""Workload generators mirroring the paper's Table 2."""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.fileserver import Fileserver
from repro.workloads.filescale import Fileappend, Fileread
from repro.workloads.lighttpd import LighttpdFleet, start_lighttpd
from repro.workloads.randomio import RandomIO
from repro.workloads.rocksdb import MiniRocksDB, RocksDbGet, RocksDbPut
from repro.workloads.seqio import Seqread, Seqwrite
from repro.workloads.serverless import ServerlessTenant
from repro.workloads.sysbench import SysbenchCpu
from repro.workloads.webserver import Webserver

__all__ = [
    "Workload",
    "WorkloadResult",
    "Fileserver",
    "Fileappend",
    "Fileread",
    "LighttpdFleet",
    "start_lighttpd",
    "RandomIO",
    "MiniRocksDB",
    "RocksDbGet",
    "RocksDbPut",
    "Seqread",
    "Seqwrite",
    "ServerlessTenant",
    "SysbenchCpu",
    "Webserver",
]
