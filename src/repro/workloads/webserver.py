"""Filebench Webserver (WBS): read-intensive local I/O.

Emulates Filebench's ``webserver.f``: many threads each open-read-close a
whole (small) file repeatedly and append to a shared web log. The paper
configures 50 threads over 200k files of 16 KB mean size on local ext4
RAID-0; the file count is scaled, the op mix and size distribution kept.
Its role in Fig. 6b is to *occupy its own pool's cores and disks* so the
kernel can no longer steal them for the Fileserver's writeback.
"""

from repro.fs.api import OpenFlags
from repro.workloads.base import Workload

__all__ = ["Webserver"]


class Webserver(Workload):
    """open/read-whole-file/close x10 + log append, per loop iteration."""

    name = "webserver"

    def __init__(self, fs, pool, duration=20.0, threads=16, nfiles=500,
                 mean_size=16 * 1024, log_append=16 * 1024, seed=0,
                 directory="/wbsdata", serve_cpu=0.0):
        super().__init__(fs, pool, duration=duration, threads=threads, seed=seed)
        self.nfiles = nfiles
        self.mean_size = mean_size
        self.log_append = log_append
        self.directory = directory
        # Per-request CPU for the server-side work a static webserver does
        # around each file (headers, logging, TLS) — keeps the pool's
        # cores genuinely busy like the real Filebench run.
        self.serve_cpu = serve_cpu

    def _file_path(self, index):
        return "%s/html/p%06d" % (self.directory, index)

    def setup(self, task):
        yield from self.fs.makedirs(task, self.directory + "/html")
        for index in range(self.nfiles):
            size = max(int(self.mean_size * (0.5 + (index % 11) / 10.0)), 512)
            yield from self.fs.write_file(
                task, self._file_path(index), self.payload(size, index)
            )
        yield from self.fs.write_file(task, self.directory + "/weblog", b"")

    def _serve_one(self, task, rng):
        if self.serve_cpu > 0:
            yield from task.cpu(self.serve_cpu)
        index = rng.randrange(self.nfiles)
        handle = yield from self.fs.open(task, self._file_path(index))
        try:
            offset = 0
            while True:
                data = yield from self.fs.read(task, handle, offset, 1 << 20)
                if not data:
                    break
                offset += len(data)
                self.result.bytes_read += len(data)
        finally:
            yield from self.fs.close(task, handle)

    def worker(self, task, worker_id, rng):
        log_path = self.directory + "/weblog"
        while not self.expired:
            for _ in range(10):
                yield from self.timed_op(self._serve_one(task, rng))
                if self.expired:
                    return
            handle = yield from self.fs.open(
                task, log_path, OpenFlags.WRONLY | OpenFlags.APPEND
            )
            try:
                entry = self.payload(self.log_append, ("log", worker_id))
                yield from self.fs.write(task, handle, 0, entry)
                self.result.bytes_written += len(entry)
            finally:
                yield from self.fs.close(task, handle)
