"""Danaus reproduction: container I/O isolation at the storage client side.

A faithful, laptop-scale reproduction of *"Experience Paper: Danaus:
Isolation and Efficiency of Container I/O at the Client Side of Network
Storage"* (Kappes & Anastasiadis, Middleware '21), built as a functional
system running inside a discrete-event simulator.

Quickstart::

    from repro import World, StackFactory
    from repro.common import units

    world = World(num_cores=8)
    world.activate_cores(4)
    pool = world.engine.create_pool("tenant0", num_cores=2,
                                    ram_bytes=units.gib(8))
    mount = StackFactory(world, pool, "D").mount_root("c0")
    task = pool.new_task("app")

    def app():
        yield from mount.fs.write_file(task, "/data.bin", b"hello danaus")
        data = yield from mount.fs.read_file(task, "/data.bin")
        print(data)

    world.sim.spawn(app())
    world.run(until=10)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction results.
"""

from repro.costs import CostModel
from repro.stacks import SYMBOLS, Mount, StackFactory, mount_local
from repro.world import World

__version__ = "1.0.0"

__all__ = [
    "World",
    "CostModel",
    "StackFactory",
    "Mount",
    "mount_local",
    "SYMBOLS",
    "__version__",
]
