"""Containers: pools, images, registry, engine."""

from repro.containers.engine import ContainerEngine
from repro.containers.images import Image, Registry, debian_base, lighttpd_image
from repro.containers.pool import Container, ContainerPool

__all__ = [
    "ContainerEngine",
    "Image",
    "Registry",
    "debian_base",
    "lighttpd_image",
    "Container",
    "ContainerPool",
    "MigrationReport",
    "migrate_container",
]


def __getattr__(name):
    # migration imports stacks (which imports containers); resolve lazily
    # to keep the package import graph acyclic.
    if name in ("MigrationReport", "migrate_container"):
        from repro.containers import migration

        return getattr(migration, name)
    raise AttributeError(name)
