"""The container engine: pool lifecycle and image plumbing.

The Danaus container engine is a user-level daemon that manages the
container pools of a host (§4.3): it carves cpusets and memory limits out
of the machine, keeps the image registry, and hands pools to the stack
factories (:mod:`repro.stacks`) that assemble the Table-1 filesystem
combinations.
"""

from repro.common import units
from repro.common.errors import ConfigError
from repro.containers.images import Registry
from repro.containers.pool import ContainerPool

__all__ = ["ContainerEngine"]


class ContainerEngine(object):
    """Manages the container pools of one host."""

    def __init__(self, world, machine=None):
        self.world = world
        self.sim = world.sim
        self.machine = machine if machine is not None else world.machine
        self.registry = Registry()
        self.pools = {}

    def create_pool(self, name, num_cores=2, ram_bytes=8 * units.GIB):
        """Reserve a pool: the paper's default is 2 cores + 8 GB RAM."""
        if name in self.pools:
            raise ConfigError("pool %r already exists" % name)
        cores = self.machine.allocate_cores(num_cores)
        pool = ContainerPool(self.sim, self.machine, name, cores, ram_bytes)
        self.pools[name] = pool
        return pool

    def create_pools(self, count, prefix="pool", num_cores=2,
                     ram_bytes=8 * units.GIB):
        """Create ``count`` identical pools (the scaleout experiments)."""
        return [
            self.create_pool("%s%d" % (prefix, index), num_cores, ram_bytes)
            for index in range(count)
        ]

    def push_image(self, image):
        return self.registry.push(image)

    def seed_image(self, task, image, fs, prefix):
        """Materialise an image onto a filesystem (sim generator)."""
        return self.registry.materialize(task, image, fs, prefix)
