"""Container migration through the shared network filesystem (§9).

The paper's future-work observation: because both the root and the
application filesystems of a container live directly on the shared
distributed filesystem, migrating a container between hosts needs no
image copying at all — flush the source client, tear the mount down, and
re-mount the very same directories from the destination host's client.

:func:`migrate_container` implements exactly that sequence and reports
the downtime (the span during which the container can serve no I/O):

1. **freeze** — stop admitting new I/O at the source mount;
2. **flush** — push the source client's dirty state to the cluster and
   its size updates to the MDS;
3. **detach** — unmount at the source (for Danaus: the filesystem
   service instance is released; a crashed source service also satisfies
   this step, which makes migration a recovery path too);
4. **adopt** — build a fresh mount on the destination pool pointing at
   the *source* container's directories in the shared namespace;
5. **thaw** — the container's processes resume on the destination pool.
"""

from repro.containers.pool import Container
from repro.stacks.factory import StackFactory

__all__ = ["MigrationReport", "migrate_container"]


class MigrationReport(object):
    """Outcome of one migration."""

    __slots__ = ("container", "downtime", "flushed_bytes", "source_pool",
                 "target_pool")

    def __init__(self, container, downtime, flushed_bytes, source_pool,
                 target_pool):
        self.container = container
        self.downtime = downtime
        self.flushed_bytes = flushed_bytes
        self.source_pool = source_pool
        self.target_pool = target_pool

    def __repr__(self):
        return "<MigrationReport %s: %s -> %s, downtime %.3fs>" % (
            self.container.cid, self.source_pool.name,
            self.target_pool.name, self.downtime,
        )


def migrate_container(world, container, target_pool, symbol="D",
                      image_path=None, **stack_kwargs):
    """Migrate ``container`` onto ``target_pool`` (possibly another host).

    Sim generator returning a :class:`MigrationReport` whose ``container``
    is the new :class:`~repro.containers.pool.Container` on the target.
    The container's persistent state is *not copied* — the shared
    filesystem already holds it; only dirty cache state moves (by being
    flushed).
    """
    sim = world.sim
    source_pool = container.pool
    source_mount = container.mount
    started = sim.now

    # 1-2. freeze + flush: push every dirty byte of the source client.
    flushed = 0
    flush_task = source_pool.new_task("migrate-flush")
    client = source_mount.client
    if client is not None and hasattr(client, "flush_all"):
        flushed = yield from client.flush_all(flush_task)

    # 3. detach: release the source-side mount. For a Danaus mount the
    # service instance is dropped; the library would now fail requests.
    if source_mount.library is not None:
        source_mount.library.detach("/")
    source_pool.containers.remove(container)

    # 4. adopt: mount the same container directories from the target pool.
    factory = StackFactory(world, target_pool, symbol, **stack_kwargs)
    source_base = "/pools/%s" % source_pool.name
    new_mount = factory.mount_root(
        container.cid, image_path=image_path, base=source_base
    )
    new_container = Container(target_pool, container.cid, new_mount)

    # 5. thaw: from here the container's tasks run on the target pool.
    downtime = sim.now - started
    return MigrationReport(
        new_container, downtime, flushed, source_pool, target_pool
    )
