"""Container pools and containers.

A *container pool* is a tenant's reservation on a host: a cpuset, a memory
limit (a cgroup child of the machine's RAM account) and private namespaces
(§2.2, §3.1). Pools are the unit of isolation the whole paper is about:
Danaus gives each pool its own filesystem service running on exactly the
pool's cores; kernel-based stacks share the host kernel no matter how the
pool is configured.
"""

from repro.common.errors import ConfigError
from repro.fs.api import Task
from repro.metrics import MetricSet
from repro.sim.cpu import SimThread, UtilizationProbe

__all__ = ["ContainerPool", "Container"]


class ContainerPool(object):
    """A tenant's reservation: cores + memory + namespaces."""

    def __init__(self, sim, machine, name, cores, ram_bytes):
        if not cores:
            raise ConfigError("pool %s needs cores" % name)
        self.sim = sim
        self.machine = machine
        self.name = name
        self.cores = list(cores)
        self.ram = machine.ram.child(ram_bytes, name="%s.ram" % name)
        self.metrics = MetricSet("pool:%s" % name)
        self.probe = UtilizationProbe(sim, self.cores)
        self.services = []  # Danaus filesystem services of this pool
        self.containers = []
        self._next_thread = 0

    def new_thread(self, label=None):
        """A thread confined to the pool's cpuset (cgroup cpuset)."""
        index = self._next_thread
        self._next_thread += 1
        name = "%s.%s" % (self.name, label or ("t%d" % index))
        return SimThread(self.sim, name, self.cores)

    def new_task(self, label=None):
        """A Task on a fresh pool thread, charged to the pool's cgroup."""
        return Task(self.new_thread(label), pool=self)

    def utilization(self):
        """Mean utilisation of the pool's cores since the last probe reset."""
        return self.probe.utilization()

    def __repr__(self):
        return "<ContainerPool %s cores=%s ram=%d>" % (
            self.name,
            [core.index for core in self.cores],
            self.ram.capacity,
        )


class Container(object):
    """One container: a root filesystem mount plus process threads."""

    def __init__(self, pool, cid, mount):
        self.pool = pool
        self.cid = cid
        self.mount = mount
        pool.containers.append(self)

    @property
    def fs(self):
        """The container's root filesystem (already rooted at '/')."""
        return self.mount.fs

    def new_task(self, label=None):
        return self.pool.new_task("%s.%s" % (self.cid, label or "p"))

    def exec_read(self, task, path):
        """exec(2)-style binary load: legacy kernel-initiated I/O."""
        return self.mount.exec_read(task, path)

    def __repr__(self):
        return "<Container %s in %s>" % (self.cid, self.pool.name)
