"""Container images: layered file archives plus a registry.

An image is a read-only stack of layers, each a mapping of paths to file
contents (§2.2). The registry materialises images onto a filesystem —
either into a shared read-only directory that cloned containers union
over, or copied wholesale into a private root for independent containers.

``debian_base`` builds a synthetic image shaped like the paper's 2.7 GB
Debian root: a few binaries, shared libraries and config trees. Sizes are
scaled (the scale factor is recorded) so simulations stay laptop-sized;
every experiment's EXPERIMENTS.md entry notes the scaling.
"""

from repro.common import units
from repro.common.rng import pseudo_bytes
from repro.fs import pathutil

__all__ = ["Image", "Registry", "debian_base", "lighttpd_image"]


class Image(object):
    """A named, read-only stack of layers (lowest first)."""

    def __init__(self, name, layers):
        self.name = name
        self.layers = [dict(layer) for layer in layers]

    def flat(self):
        """The merged view: higher layers override lower ones."""
        merged = {}
        for layer in self.layers:
            merged.update(layer)
        return merged

    @property
    def total_bytes(self):
        return sum(len(data) for data in self.flat().values())

    @property
    def file_count(self):
        return len(self.flat())

    def __repr__(self):
        return "<Image %s: %d files, %d bytes>" % (
            self.name, self.file_count, self.total_bytes,
        )


class Registry(object):
    """Stores images by name and materialises them onto filesystems."""

    def __init__(self):
        self._images = {}

    def push(self, image):
        self._images[image.name] = image
        return image

    def get(self, name):
        return self._images[name]

    def __contains__(self, name):
        return name in self._images

    def materialize(self, task, image, fs, prefix="/"):
        """Write the image's merged tree under ``prefix`` on ``fs``.

        Sim generator: this is the "expand the image into a file tree"
        step of container creation — or, for Danaus, the one-time
        population of the shared read-only lower branch.
        """
        written = 0
        for path, data in sorted(image.flat().items()):
            target = pathutil.join(prefix, path.lstrip("/"))
            yield from fs.makedirs(task, pathutil.parent_of(target))
            yield from fs.write_file(task, target, data)
            written += len(data)
        return written


def debian_base(name="debian9", scale=1.0 / 1024, seed=7):
    """A synthetic Debian-like base image.

    ``scale`` shrinks the paper's 2.7 GB image (default: to ~2.7 MB) while
    keeping the file-count/size *shape*: a few large libraries, many small
    configuration files.
    """
    def sized(nominal):
        return max(int(nominal * scale), 64)

    layer_os = {}
    # Large shared objects (the mmap traffic of container startup).
    for index, nominal in enumerate(
        [units.mib(180), units.mib(90), units.mib(60), units.mib(45)]
    ):
        layer_os["/lib/lib%d.so" % index] = pseudo_bytes(
            sized(nominal), (seed, "lib", index)
        )
    # Binaries (the exec traffic).
    for binary, nominal in [
        ("sh", units.mib(1)), ("ls", units.kib(140)), ("cat", units.kib(40)),
        ("init", units.mib(2)),
    ]:
        layer_os["/bin/" + binary] = pseudo_bytes(
            sized(nominal), (seed, "bin", binary)
        )
    # Many small files: /etc and friends.
    layer_etc = {}
    for index in range(48):
        layer_etc["/etc/conf.d/%02d.conf" % index] = pseudo_bytes(
            sized(units.kib(24)), (seed, "etc", index)
        )
    layer_share = {
        "/usr/share/doc/readme.%d" % index: pseudo_bytes(
            sized(units.kib(96)), (seed, "doc", index)
        )
        for index in range(24)
    }
    return Image(name, [layer_os, layer_etc, layer_share])


def lighttpd_image(base=None, scale=1.0 / 1024, seed=11):
    """Debian base plus the Lighttpd binary, config and web root."""
    if base is None:
        base = debian_base(scale=scale, seed=seed)

    def sized(nominal):
        return max(int(nominal * scale), 64)

    app_layer = {
        "/usr/sbin/lighttpd": pseudo_bytes(sized(units.mib(3)), (seed, "httpd")),
        "/etc/lighttpd/lighttpd.conf": pseudo_bytes(
            sized(units.kib(32)), (seed, "conf")
        ),
    }
    for index in range(16):
        app_layer["/var/www/page%02d.html" % index] = pseudo_bytes(
            sized(units.kib(64)), (seed, "www", index)
        )
    return Image("lighttpd", base.layers + [app_layer])
