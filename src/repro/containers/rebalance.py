"""Dynamic memory reallocation across pools (§9 future work).

"The partitioning of host resources across different pools trades the
resource utilization for improved isolation. We leave for future
extension of our framework the dynamic reallocation of underutilized
resources (e.g., memory) combined with service quality guarantees."

:class:`MemoryRebalancer` implements that extension: it periodically
moves *unused* memory reservation from cold pools to pools under memory
pressure, while never shrinking a pool below its guaranteed share — the
service-quality floor. Because every cache in the reproduction charges
its pool's RAM account, a larger account immediately translates into a
larger effective cache.
"""

from repro.common.errors import ConfigError
from repro.metrics import MetricSet

__all__ = ["MemoryRebalancer"]


class MemoryRebalancer(object):
    """Shifts spare reservation between pools under a guarantee floor."""

    def __init__(self, sim, pools, interval=1.0, guarantee_fraction=0.5,
                 donor_threshold=0.5, receiver_threshold=0.85,
                 step_fraction=0.1):
        if not 0.0 < guarantee_fraction <= 1.0:
            raise ConfigError("guarantee_fraction must be in (0, 1]")
        self.sim = sim
        self.pools = list(pools)
        self.interval = interval
        self.donor_threshold = donor_threshold
        self.receiver_threshold = receiver_threshold
        self.step_fraction = step_fraction
        #: per-pool guaranteed capacity (the SLA floor)
        self.guarantees = {
            pool: int(pool.ram.capacity * guarantee_fraction)
            for pool in self.pools
        }
        self.metrics = MetricSet("rebalancer")
        self._stopped = False
        sim.spawn(self._loop(), name="mem-rebalancer")

    def stop(self):
        self._stopped = True

    # -- policy ------------------------------------------------------------

    def _usage(self, pool):
        return pool.ram.used / pool.ram.capacity if pool.ram.capacity else 0.0

    def donors(self):
        """Pools with spare reservation above their guarantee."""
        out = []
        for pool in self.pools:
            if self._usage(pool) < self.donor_threshold:
                spare = pool.ram.capacity - max(
                    pool.ram.used, self.guarantees[pool]
                )
                if spare > 0:
                    out.append((pool, spare))
        return out

    def receivers(self):
        """Pools under memory pressure, most pressured first."""
        pressured = [
            pool for pool in self.pools
            if self._usage(pool) >= self.receiver_threshold
        ]
        return sorted(pressured, key=self._usage, reverse=True)

    def rebalance_once(self):
        """One policy pass; returns the bytes moved."""
        moved = 0
        donor_list = self.donors()
        for receiver in self.receivers():
            for index, (donor, spare) in enumerate(donor_list):
                if donor is receiver or spare <= 0:
                    continue
                step = min(spare, int(donor.ram.capacity * self.step_fraction))
                if step <= 0:
                    continue
                self._transfer(donor, receiver, step)
                donor_list[index] = (donor, spare - step)
                moved += step
        if moved:
            self.metrics.counter("bytes_moved").add(moved)
            self.metrics.counter("rebalances").add(1)
        return moved

    def _transfer(self, donor, receiver, nbytes):
        """Shrink the donor's reservation, grow the receiver's.

        Capacity moves, usage does not; the donor keeps at least
        max(used, guarantee).
        """
        floor = max(donor.ram.used, self.guarantees[donor])
        nbytes = min(nbytes, donor.ram.capacity - floor)
        if nbytes <= 0:
            return
        donor.ram.capacity -= nbytes
        receiver.ram.capacity += nbytes
        self.sim.trace("rebalance", "move", src=donor.name,
                       dst=receiver.name, bytes=nbytes)

    def _loop(self):
        while not self._stopped:
            yield self.sim.timeout(self.interval)
            if self._stopped:
                return
            self.rebalance_once()
