"""Union filesystem: stacked branches, copy-on-write, whiteouts."""

from repro.unionfs.union import Branch, UnionFs, WHITEOUT_PREFIX

__all__ = ["Branch", "UnionFs", "WHITEOUT_PREFIX"]
