"""Union filesystem: stacked branches with file-level copy-on-write.

The semantics follow Unionfs/unionfs-fuse, which both AUFS and the Danaus
union libservice derive from (§4.3):

* branches are ordered top-first; only the top branch is writable;
* a lookup walks from the top and stops at the first branch containing the
  file *or a whiteout* marking it deleted;
* writing a file that lives in a lower branch first copies the whole file
  up to the top branch (the paper notes Danaus "does not prevent the
  copy-on-write of entire files" — Fileappend's 50/50 read/write mix in
  Fig. 11a is exactly this);
* deleting a lower-branch file creates a whiteout entry in the top branch;
* readdir merges entries of all branches, hiding whiteouts and duplicates.

The union holds **no cache and no inodes of its own**: it interacts with
the branch filesystems through plain function calls at file level (§3.3),
so a shared lower branch is cached once in the shared backend client.
"""

from repro.common.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    ReadOnlyFilesystem,
)
from repro.fs import pathutil
from repro.fs.api import FileHandle, Filesystem, OpenFlags
from repro.metrics import MetricSet

__all__ = ["Branch", "UnionFs", "WHITEOUT_PREFIX"]

WHITEOUT_PREFIX = ".wh."


class Branch(object):
    """One branch: a filesystem subtree, writable or read-only."""

    __slots__ = ("fs", "root", "writable")

    def __init__(self, fs, root="/", writable=False):
        self.fs = fs
        self.root = pathutil.normalize(root)
        self.writable = writable

    def map_path(self, path):
        """Translate a union path into this branch's namespace."""
        return pathutil.join(self.root, path.lstrip("/")) if path != "/" else self.root

    def whiteout_path(self, path):
        parent, name = pathutil.split(path)
        return self.map_path(pathutil.join(parent, WHITEOUT_PREFIX + name))

    def __repr__(self):
        mode = "rw" if self.writable else "ro"
        return "<Branch %s %s on %s>" % (self.root, mode, self.fs.name)


class _UnionHandle(FileHandle):
    __slots__ = ("branch", "inner")

    def __init__(self, fs, path, flags, branch, inner):
        super().__init__(fs, path, flags)
        self.branch = branch
        self.inner = inner


class UnionFs(Filesystem):
    """A stack of branches exposed as one filesystem."""

    def __init__(self, sim, costs, branches, name="union"):
        if not branches:
            raise InvalidArgument("union needs at least one branch")
        if not branches[0].writable and len(branches) > 1:
            raise InvalidArgument("the top branch must be the writable one")
        self.sim = sim
        self.costs = costs
        self.branches = list(branches)
        self.name = name
        self.metrics = MetricSet(name)

    @property
    def top(self):
        return self.branches[0]

    # -- lookup across branches --------------------------------------------

    def _branch_cpu(self, task, visited):
        yield from task.cpu(self.costs.union_branch_op * max(visited, 1))

    def _find(self, task, path):
        """Locate ``path``: returns ``(branch, mapped_path)`` or raises.

        Walking stops at the first branch holding the entry or a whiteout.
        """
        visited = 0
        for branch in self.branches:
            visited += 1
            if branch.writable:
                whiteout = yield from branch.fs.exists(
                    task, branch.whiteout_path(path)
                )
                if whiteout:
                    yield from self._branch_cpu(task, visited)
                    raise FileNotFound(path=path)
            present = yield from branch.fs.exists(task, branch.map_path(path))
            if present:
                yield from self._branch_cpu(task, visited)
                return branch, branch.map_path(path)
        yield from self._branch_cpu(task, visited)
        raise FileNotFound(path=path)

    def _try_find(self, task, path):
        try:
            result = yield from self._find(task, path)
            return result
        except FileNotFound:
            return None

    # -- copy-up -----------------------------------------------------------------

    def _copy_up(self, task, path, source_branch):
        """Copy a whole file from a lower branch into the top branch."""
        top = self.top
        if not top.writable:
            raise ReadOnlyFilesystem(path=path)
        yield from top.fs.makedirs(task, pathutil.parent_of(top.map_path(path)))
        data = yield from source_branch.fs.read_file(
            task, source_branch.map_path(path)
        )
        yield from top.fs.write_file(task, top.map_path(path), data)
        self.metrics.counter("copy_ups").add(1)
        self.metrics.counter("copy_up_bytes").add(len(data))

    def _clear_whiteout(self, task, path):
        top = self.top
        whiteout = top.whiteout_path(path)
        present = yield from top.fs.exists(task, whiteout)
        if present:
            yield from top.fs.unlink(task, whiteout)

    # -- Filesystem interface ---------------------------------------------------------

    def open(self, task, path, flags=OpenFlags.RDONLY, mode=0o644):
        path = pathutil.normalize(path)
        found = yield from self._try_find(task, path)
        if found is None:
            if not flags & OpenFlags.CREAT:
                raise FileNotFound(path=path)
            top = self.top
            if not top.writable:
                raise ReadOnlyFilesystem(path=path)
            yield from self._clear_whiteout(task, path)
            yield from top.fs.makedirs(task, pathutil.parent_of(top.map_path(path)))
            inner = yield from top.fs.open(task, top.map_path(path), flags, mode)
            return _UnionHandle(self, path, flags, top, inner)
        branch, mapped = found
        if flags & OpenFlags.EXCL and flags & OpenFlags.CREAT:
            raise FileExists(path=path)
        if flags.wants_write and not branch.writable:
            stat = yield from branch.fs.stat(task, mapped)
            if stat.is_dir:
                raise IsADirectory(path=path)
            if not flags & OpenFlags.TRUNC:
                yield from self._copy_up(task, path, branch)
            else:
                # Truncating: no point copying bytes that are discarded.
                top = self.top
                yield from top.fs.makedirs(
                    task, pathutil.parent_of(top.map_path(path))
                )
                yield from top.fs.write_file(task, top.map_path(path), b"")
            branch = self.top
            mapped = branch.map_path(path)
        inner = yield from branch.fs.open(task, mapped, flags, mode)
        return _UnionHandle(self, path, flags, branch, inner)

    def close(self, task, handle):
        yield from handle.branch.fs.close(task, handle.inner)
        handle.closed = True

    def read(self, task, handle, offset, size):
        return (yield from handle.branch.fs.read(task, handle.inner, offset, size))

    def write(self, task, handle, offset, data):
        if not handle.branch.writable:
            raise ReadOnlyFilesystem(path=handle.path)
        return (yield from handle.branch.fs.write(task, handle.inner, offset, data))

    def fsync(self, task, handle):
        yield from handle.branch.fs.fsync(task, handle.inner)

    def stat(self, task, path):
        branch, mapped = yield from self._find(task, path)
        return (yield from branch.fs.stat(task, mapped))

    def mkdir(self, task, path, mode=0o755):
        path = pathutil.normalize(path)
        found = yield from self._try_find(task, path)
        if found is not None:
            raise FileExists(path=path)
        top = self.top
        if not top.writable:
            raise ReadOnlyFilesystem(path=path)
        yield from self._clear_whiteout(task, path)
        yield from top.fs.makedirs(task, pathutil.parent_of(top.map_path(path)))
        yield from top.fs.mkdir(task, top.map_path(path), mode)

    def rmdir(self, task, path):
        path = pathutil.normalize(path)
        entries = yield from self.readdir(task, path)
        if entries:
            from repro.common.errors import DirectoryNotEmpty

            raise DirectoryNotEmpty(path=path)
        yield from self._remove(task, path, is_dir=True)

    def unlink(self, task, path):
        path = pathutil.normalize(path)
        yield from self._find(task, path)  # ensure it exists
        yield from self._remove(task, path, is_dir=False)

    def _remove(self, task, path, is_dir):
        top = self.top
        if not top.writable:
            raise ReadOnlyFilesystem(path=path)
        in_top = yield from top.fs.exists(task, top.map_path(path))
        if in_top:
            if is_dir:
                yield from top.fs.rmdir(task, top.map_path(path))
            else:
                yield from top.fs.unlink(task, top.map_path(path))
        # If any lower branch still holds the entry, mask it with a whiteout.
        lower_has = False
        for branch in self.branches[1:]:
            present = yield from branch.fs.exists(task, branch.map_path(path))
            if present:
                lower_has = True
                break
        if lower_has:
            yield from top.fs.makedirs(task, pathutil.parent_of(top.map_path(path)))
            yield from top.fs.write_file(task, top.whiteout_path(path), b"")
            self.metrics.counter("whiteouts").add(1)

    def readdir(self, task, path):
        path = pathutil.normalize(path)
        names = []
        seen = set()
        hidden = set()
        found_any = False
        for branch in self.branches:
            mapped = branch.map_path(path)
            present = yield from branch.fs.exists(task, mapped)
            if not present:
                continue
            found_any = True
            entries = yield from branch.fs.readdir(task, mapped)
            for entry in entries:
                if entry.startswith(WHITEOUT_PREFIX):
                    hidden.add(entry[len(WHITEOUT_PREFIX):])
                    continue
                if entry in seen or entry in hidden:
                    continue
                seen.add(entry)
                names.append(entry)
        if not found_any:
            raise FileNotFound(path=path)
        yield from task.cpu(self.costs.dirent_op * max(len(names), 1))
        return sorted(name for name in names if name not in hidden)

    def rename(self, task, old_path, new_path):
        """Rename by copy-up then whiteout (unionfs-fuse behaviour)."""
        old_path = pathutil.normalize(old_path)
        new_path = pathutil.normalize(new_path)
        branch, mapped = yield from self._find(task, old_path)
        top = self.top
        if not top.writable:
            raise ReadOnlyFilesystem(path=old_path)
        if branch is top:
            lower_has = False
            for lower in self.branches[1:]:
                present = yield from lower.fs.exists(task, lower.map_path(old_path))
                if present:
                    lower_has = True
                    break
            yield from self._clear_whiteout(task, new_path)
            yield from top.fs.makedirs(
                task, pathutil.parent_of(top.map_path(new_path))
            )
            yield from top.fs.rename(
                task, top.map_path(old_path), top.map_path(new_path)
            )
            if lower_has:
                yield from top.fs.write_file(task, top.whiteout_path(old_path), b"")
        else:
            data = yield from branch.fs.read_file(task, mapped)
            yield from self._clear_whiteout(task, new_path)
            yield from top.fs.makedirs(
                task, pathutil.parent_of(top.map_path(new_path))
            )
            yield from top.fs.write_file(task, top.map_path(new_path), data)
            yield from top.fs.makedirs(
                task, pathutil.parent_of(top.map_path(old_path))
            )
            yield from top.fs.write_file(task, top.whiteout_path(old_path), b"")
            self.metrics.counter("whiteouts").add(1)

    def peek(self, path, offset, size):
        """Zero-cost resident-data read: first branch that resolves wins."""
        path = pathutil.normalize(path)
        for branch in self.branches:
            if branch.writable:
                if branch.fs.peek(branch.whiteout_path(path), 0, 1) is not None:
                    return None
            data = branch.fs.peek(branch.map_path(path), offset, size)
            if data is not None:
                return data
        return None

    def truncate(self, task, path, size):
        path = pathutil.normalize(path)
        branch, mapped = yield from self._find(task, path)
        if not branch.writable:
            if size > 0:
                yield from self._copy_up(task, path, branch)
            else:
                yield from self.top.fs.makedirs(
                    task, pathutil.parent_of(self.top.map_path(path))
                )
                yield from self.top.fs.write_file(task, self.top.map_path(path), b"")
            branch = self.top
            mapped = branch.map_path(path)
        yield from branch.fs.truncate(task, mapped, size)
