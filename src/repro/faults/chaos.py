"""Chaos harness: run a workload under a fault plan, prove integrity.

A :class:`ChaosConfig` (or the legacy ``run_chaos`` keyword wrapper
around it) wires a complete testbed (world, pool, container mount,
supervised Danaus service), installs a :class:`FaultPlan`, drives a
mutating workload through the fault windows, waits for the system to
*converge* (every fault healed, every retry drained, dirty data flushed)
and then verifies end-to-end data integrity: every file whose last write
was acknowledged must read back with exactly the acknowledged content.

Files whose last write *failed* (an error surfaced to the application)
are excluded — the workload cannot know how much of that write landed —
which mirrors what a real application can assume from POSIX error
returns.

The whole pipeline is deterministic: two calls with the same seed yield
identical fault logs, identical op counts and identical file digests.
"""

import dataclasses
import hashlib

from repro.common import units
from repro.common.errors import ConfigError, FsError, SimulationError
from repro.core import ServiceSupervisor
from repro.faults.plan import FaultPlan
from repro.stacks import StackFactory
from repro.workloads.base import Workload
from repro.world import World

__all__ = [
    "ChaosConfig",
    "ChaosFileserver",
    "ChaosResult",
    "run_chaos",
    "run_membership_churn",
]

#: Marks a file whose on-disk content cannot be asserted (failed write).
UNKNOWN = "unknown"

#: Settling time after the last fault heals, before verification.
SETTLE_TIME = 3.0


class ChaosFileserver(Workload):
    """A mutating fileserver that remembers what it acknowledged.

    Each worker owns a disjoint slice of the file set (no cross-thread
    write races), overwrites its files with deterministic payloads and
    re-reads them while faults fire. The expected-content registry maps
    every file to the payload tag of its last *acknowledged* write; a
    write that errored marks the file :data:`UNKNOWN` until it is
    successfully overwritten.
    """

    name = "chaos-fileserver"

    def __init__(self, fs, pool, duration=12.0, threads=2, nfiles=24,
                 mean_size=32 * 1024, seed=0, directory="/chaos"):
        super().__init__(fs, pool, duration=duration, threads=threads,
                         seed=seed)
        self.nfiles = nfiles
        self.mean_size = mean_size
        self.directory = directory
        self.expected = {}  # index -> (size, tag) | UNKNOWN
        self.read_mismatches = []  # online read-back failures

    def _path(self, index):
        return "%s/f%04d" % (self.directory, index)

    def _payload_for(self, index, worker_id, round_no, rng):
        size = max(int(self.mean_size * rng.uniform(0.5, 1.5)), 4096)
        tag = (index, worker_id, round_no)
        return size, tag, self.payload(size, tag)

    def setup(self, task):
        yield from self.fs.makedirs(task, self.directory)

    def worker(self, task, worker_id, rng):
        owned = [
            index for index in range(self.nfiles)
            if index % self.threads == worker_id
        ]
        round_no = 0
        while not self.expired:
            round_no += 1
            index = owned[rng.randrange(len(owned))]
            size, tag, data = self._payload_for(index, worker_id, round_no, rng)
            self.expected[index] = UNKNOWN  # in flight: content undecided
            try:
                yield from self.timed_op(
                    self.fs.write_file(task, self._path(index), data)
                )
            except FsError:
                self.result.errors += 1
                continue
            self.expected[index] = (size, tag)
            self.result.bytes_written += size
            if self.expired:
                break
            check = owned[rng.randrange(len(owned))]
            expectation = self.expected.get(check)
            try:
                got = yield from self.timed_op(
                    self.fs.read_file(task, self._path(check))
                )
            except FsError:
                self.result.errors += 1
                continue
            self.result.bytes_read += len(got)
            if expectation not in (None, UNKNOWN) \
                    and self.expected.get(check) is expectation:
                want_size, want_tag = expectation
                want = self.payload(want_size, want_tag)
                if got != want:
                    diff_at = next(
                        (i for i, (a, b) in enumerate(zip(got, want))
                         if a != b),
                        min(len(got), len(want)),
                    )
                    self.read_mismatches.append(
                        (check, want_tag, round(self.sim.now, 6),
                         len(got), want_size, diff_at)
                    )

    # -- final verification ------------------------------------------------

    def verify(self, task):
        """Re-read every acknowledged file and compare checksums.

        Sim generator; returns ``(digests, checked, skipped, mismatches)``
        where ``digests`` maps file index to the blake2b hex digest of
        the bytes read back (the determinism fingerprint).
        """
        digests = {}
        checked = 0
        skipped = 0
        mismatches = []
        for index in sorted(self.expected):
            expectation = self.expected[index]
            if expectation is UNKNOWN:
                skipped += 1
                continue
            size, tag = expectation
            try:
                data = yield from self.fs.read_file(task, self._path(index))
            except FsError as err:
                # An acknowledged file that cannot be read back (e.g.
                # DataCorrupt on an unrepairable object) is an integrity
                # failure, not a harness crash.
                digests[index] = "error:%s" % type(err).__name__
                checked += 1
                mismatches.append((index, tag, -1, size))
                continue
            digests[index] = hashlib.blake2b(data, digest_size=16).hexdigest()
            checked += 1
            if data != self.payload(size, tag):
                mismatches.append((index, tag, len(data), size))
        return digests, checked, skipped, mismatches


class ChaosResult(object):
    """Outcome of one chaos run: integrity verdict + determinism handles."""

    def __init__(self, seed, plan_log, digests, checked, skipped, mismatches,
                 read_mismatches, workload_result, converged, retries,
                 service_restarts, corruptions=0, integrity_errors=(),
                 quarantined=(), repairs=0, scrub_converged=True,
                 membership_converged=True, under_replicated=(),
                 map_epoch=0, backfill_objects=0, backfill_bytes=0):
        self.seed = seed
        self.plan_log = plan_log
        self.digests = digests
        self.files_checked = checked
        self.files_skipped = skipped
        self.mismatches = mismatches
        self.read_mismatches = read_mismatches
        self.workload_result = workload_result
        self.converged = converged
        self.retries = retries
        self.service_restarts = service_restarts
        #: corruption injections that found a replica to damage
        self.corruptions = corruptions
        #: corrupt replicas still live at convergence: [(osd, ino, index)]
        self.integrity_errors = list(integrity_errors)
        #: objects quarantined (no clean replica) at convergence
        self.quarantined = sorted(quarantined)
        #: replicas repaired (read-repair + scrub) over the run
        self.repairs = repairs
        #: True when the final deep-scrub drain reached a clean pass
        self.scrub_converged = scrub_converged
        #: True when membership settled: every OSD rejoined and the
        #: backfill drain reached idle (trivially True without lifecycle)
        self.membership_converged = membership_converged
        #: object keys still under-replicated at convergence
        self.under_replicated = sorted(under_replicated)
        #: final osdmap epoch (0 when the lifecycle never armed)
        self.map_epoch = map_epoch
        #: objects and bytes the backfill scheduler pushed over the run
        self.backfill_objects = backfill_objects
        self.backfill_bytes = backfill_bytes

    @property
    def ok(self):
        return (
            self.converged
            and self.scrub_converged
            and self.membership_converged
            and not self.under_replicated
            and not self.mismatches
            and not self.read_mismatches
            and not self.integrity_errors
            and not self.quarantined
        )

    def fingerprint(self):
        """A hashable determinism fingerprint of the whole run."""
        return (
            tuple(self.plan_log),
            tuple(sorted(self.digests.items())),
            self.workload_result.ops,
            self.workload_result.bytes_written,
        )

    def __repr__(self):
        return "<ChaosResult seed=%s ok=%s checked=%d skipped=%d>" % (
            self.seed, self.ok, self.files_checked, self.files_skipped,
        )


@dataclasses.dataclass
class ChaosConfig:
    """Declarative configuration of one chaos run.

    Replaces the historical 20-keyword ``run_chaos`` signature with one
    record the spec compiler can build from a plain dict. Fields group
    into cluster topology (``num_osds``/``replicas``/core and RAM
    sizing), workload shape (``symbol``/``duration``/``threads``/...),
    the fault mix (counts per :class:`FaultPlan` kind) and pipeline
    switches (``supervise``/``scrub``/``until``). Defaults reproduce the
    old ``run_chaos`` behaviour exactly.

    ``plan`` carries a pre-built :class:`FaultPlan`; when None a plan is
    generated from the seed and the fault-count fields.
    """

    seed: int = 0
    symbol: str = "D"
    # -- workload shape --------------------------------------------------
    duration: float = 12.0
    threads: int = 2
    nfiles: int = 24
    mean_size: int = 32 * 1024
    # -- cluster topology ------------------------------------------------
    num_osds: int = 6
    replicas: int = 1
    num_cores: int = 8
    active_cores: int = 4
    ram_gib: int = 16
    pool_cores: int = 2
    pool_ram_gib: int = 4
    # -- fault mix -------------------------------------------------------
    osd_crashes: int = 1
    partitions: int = 1
    service_crashes: int = 1
    mds_windows: int = 0
    slow_disks: int = 0
    bitrot: int = 0
    torn_writes: int = 0
    flaps: int = 0
    osd_adds: int = 0
    osd_drains: int = 0
    mds_crashes: int = 0
    mds_failovers: int = 0
    mds_rank_splits: int = 0
    mds_standbys: int = 1
    oracle_meta: bool = False
    # -- pipeline switches -----------------------------------------------
    supervise: bool = True
    scrub: bool = False
    scrub_interval: float = None
    until: float = 600.0
    plan: FaultPlan = None

    @classmethod
    def field_names(cls):
        """The spec-able field names (everything but ``plan``)."""
        return tuple(
            f.name for f in dataclasses.fields(cls) if f.name != "plan"
        )

    @classmethod
    def from_dict(cls, values, **overrides):
        """Build a config from a plain dict; unknown keys are errors."""
        merged = dict(values or {})
        merged.update(overrides)
        unknown = sorted(set(merged) - {f.name for f in dataclasses.fields(cls)})
        if unknown:
            raise ConfigError(
                "unknown ChaosConfig fields: %s (known: %s)"
                % (", ".join(unknown), ", ".join(cls.field_names()))
            )
        return cls(**merged)

    def to_dict(self):
        """A JSON-safe field dict (``plan`` omitted)."""
        return {name: getattr(self, name) for name in self.field_names()}

    def run(self):
        """Execute the full chaos pipeline; returns a :class:`ChaosResult`.

        Builds a one-pool testbed of stack :attr:`symbol` over the
        configured cluster topology, generates (or takes) a fault plan,
        runs :class:`ChaosFileserver` under it, settles, verifies.

        ``bitrot``/``torn_writes`` schedule silent-corruption faults
        (arming cluster integrity); ``scrub=True`` starts the background
        scrub daemon and ends the run with a deep-scrub drain, so the
        result also asserts that every injected corruption was repaired
        (``integrity_errors``, ``scrub_converged``). Corruption runs want
        ``replicas >= 2`` — with a single replica there is nothing to
        repair from, only quarantine.

        ``flaps``/``osd_adds``/``osd_drains`` schedule membership churn;
        installing such a plan arms the heartbeat prober and the
        throttled backfill scheduler, and the pipeline then waits for
        every OSD to rejoin and for backfill to drain before verifying
        (``membership_converged``, ``under_replicated``). Churn runs
        want ``replicas >= 2`` so degraded windows stay readable.
        """
        return _run_chaos_config(self)


def _run_chaos_config(config):
    seed = config.seed
    duration = config.duration
    world = World(
        num_cores=config.num_cores,
        ram_bytes=units.gib(config.ram_gib),
        num_osds=config.num_osds,
        replicas=config.replicas,
    )
    world.activate_cores(config.active_cores)
    pool = world.engine.create_pool(
        "p0", num_cores=config.pool_cores,
        ram_bytes=units.gib(config.pool_ram_gib),
    )
    factory = StackFactory(world, pool, config.symbol)
    mount = factory.mount_root("c0")
    services = list(pool.services)
    supervisor = None
    if config.supervise and services:
        supervisor = ServiceSupervisor(world.sim, world.costs)
        for service in services:
            supervisor.watch(service)
    plan = config.plan
    if plan is None:
        plan = FaultPlan.generate(
            seed,
            horizon=duration,
            num_osds=len(world.cluster.osds),
            services=[service.name for service in services],
            osd_crashes=config.osd_crashes,
            partitions=config.partitions,
            service_crashes=config.service_crashes if config.supervise else 0,
            mds_windows=config.mds_windows,
            slow_disks=config.slow_disks,
            bitrot=config.bitrot,
            torn_writes=config.torn_writes,
            flaps=config.flaps,
            osd_adds=config.osd_adds,
            osd_drains=config.osd_drains,
            mds_crashes=config.mds_crashes,
            mds_failovers=config.mds_failovers,
            mds_rank_splits=config.mds_rank_splits,
            mds_standbys=config.mds_standbys,
            oracle_meta=config.oracle_meta,
        )
    workload = ChaosFileserver(
        mount.fs, pool, duration=duration, threads=config.threads,
        nfiles=config.nfiles, mean_size=config.mean_size, seed=seed,
    )
    plan.install(world, services=services)
    scrub_daemon = None
    if config.scrub:
        scrub_kwargs = {}
        if config.scrub_interval is not None:
            scrub_kwargs["interval"] = config.scrub_interval
        scrub_daemon = world.cluster.start_scrub(**scrub_kwargs)

    def pipeline():
        result = yield from workload.run()
        # Convergence: wait out the plan's last heal, then settle so
        # retries drain and the flusher pushes re-dirtied data out.
        remaining = plan.end_time() - world.sim.now
        if remaining > 0:
            yield world.sim.timeout(remaining)
        yield world.sim.timeout(SETTLE_TIME)
        client = factory._shared.get("lib_client")
        if client is not None:
            flush_task = pool.new_task("chaos.flush")
            yield from client.flush_all(flush_task)
        yield world.sim.timeout(SETTLE_TIME)
        # Corruption actions that fired while all data was still dirty
        # client-side defer until replicas hold real bytes; the flush
        # above provides them, so wait for every injection to land
        # before the final scrub pass judges convergence.
        for _ in range(300):
            if not plan.pending_corruptions:
                break
            yield world.sim.timeout(0.25)
        # Membership convergence: wait for the heartbeat prober to
        # rejoin every bounced OSD (flap probations included), then
        # drain backfill so remapped/degraded objects are materialised
        # on their acting sets and strays are trimmed.
        monitor = world.cluster.monitor
        membership_converged = True
        if monitor.heartbeats_enabled:
            for _ in range(600):
                if not monitor.has_failures():
                    break
                yield world.sim.timeout(0.25)
        if world.cluster.backfill is not None:
            membership_converged = yield from world.cluster.backfill.drain()
        if monitor.lifecycle:
            membership_converged = (
                membership_converged and not monitor.has_failures()
            )
        # Metadata convergence: give standby promotion + journal replay
        # (and duration-healed crash recoveries) time to finish before
        # the final verification sweeps the namespace.
        if world.cluster.mds_service is not None:
            for _ in range(600):
                if world.cluster.mds_healthy():
                    break
                yield world.sim.timeout(0.25)
        scrub_converged = True
        if scrub_daemon is not None:
            # Stop the periodic loop, then deep-scrub to convergence so
            # every latent corruption is found and repaired before the
            # integrity sweep below.
            scrub_daemon.stop()
            scrub_converged = yield from scrub_daemon.drain()
        integrity_errors = world.cluster.integrity_errors()
        verify_task = pool.new_task("chaos.verify")
        digests, checked, skipped, mismatches = (
            yield from workload.verify(verify_task)
        )
        converged = (
            world.cluster.inflight_attempts == 0
            and not world.fabric.partitioned
            and world.cluster.mds_healthy()
            and all(not service.crashed for service in services)
        )
        cluster_metrics = world.cluster.metrics
        monitor_metrics = world.cluster.monitor.metrics
        backfill = world.cluster.backfill
        corruptions = sum(
            int(osd.metrics.counter("bitrot_injected").value)
            + int(osd.metrics.counter("torn_injected").value)
            for osd in world.cluster.osds
        )
        return ChaosResult(
            seed,
            list(plan.log),
            digests,
            checked,
            skipped,
            mismatches,
            list(workload.read_mismatches),
            result,
            converged,
            int(cluster_metrics.counter("retries").value),
            sum(
                int(service.metrics.counter("restarts").value)
                for service in services
            ),
            corruptions=corruptions,
            integrity_errors=integrity_errors,
            quarantined=set(world.cluster.quarantined),
            repairs=int(monitor_metrics.counter("objects_repaired").value),
            scrub_converged=scrub_converged,
            membership_converged=membership_converged,
            under_replicated=[
                (ino, index)
                for ino, index, _missing in monitor.under_replicated()
            ],
            map_epoch=monitor.epoch,
            backfill_objects=(
                int(backfill.metrics.counter("objects_pushed").value)
                if backfill is not None else 0
            ),
            backfill_bytes=(
                int(backfill.metrics.counter("bytes_moved").value)
                if backfill is not None else 0
            ),
        )

    process = world.sim.spawn(pipeline(), name="chaos-run")
    finished = world.sim.run_until(process, world.sim.now + config.until)
    if not finished:
        raise SimulationError(
            "chaos run did not converge by t=%s" % config.until
        )
    return process.value


def run_chaos(seed=0, symbol="D", duration=12.0, threads=2, nfiles=24,
              mean_size=32 * 1024, plan=None, supervise=True, until=600.0,
              osd_crashes=1, partitions=1, service_crashes=1, mds_windows=0,
              slow_disks=0, replicas=1, bitrot=0, torn_writes=0,
              scrub=False, scrub_interval=None, flaps=0, osd_adds=0,
              osd_drains=0):
    """Back-compat wrapper over :meth:`ChaosConfig.run`.

    .. deprecated:: the keyword-soup signature is frozen for existing
       callers; new code (and every experiment spec) should build a
       :class:`ChaosConfig` — same fields, one record, dict-friendly —
       and call its :meth:`~ChaosConfig.run`. This wrapper simply packs
       its keywords into a config, so behaviour and determinism
       fingerprints are identical.
    """
    return ChaosConfig(
        seed=seed, symbol=symbol, duration=duration, threads=threads,
        nfiles=nfiles, mean_size=mean_size, plan=plan, supervise=supervise,
        until=until, osd_crashes=osd_crashes, partitions=partitions,
        service_crashes=service_crashes, mds_windows=mds_windows,
        slow_disks=slow_disks, replicas=replicas, bitrot=bitrot,
        torn_writes=torn_writes, scrub=scrub, scrub_interval=scrub_interval,
        flaps=flaps, osd_adds=osd_adds, osd_drains=osd_drains,
    ).run()


#: The membership-churn preset fields (see :func:`run_membership_churn`).
CHURN_PRESET = dict(
    replicas=2,
    osd_crashes=1,
    flaps=1,
    osd_adds=1,
    osd_drains=1,
    partitions=0,
    service_crashes=0,
)


def run_membership_churn(seed=0, duration=14.0, **overrides):
    """Membership-churn chaos preset; returns a :class:`ChaosResult`.

    One heartbeat-detected crash/restart, one flapping OSD, one runtime
    ``osd_add`` and one graceful ``osd_drain`` over a two-replica pool —
    the full monitor lifecycle (up → suspect → down → out → rejoin),
    epoch-fenced client ops and throttled backfill, all in one run. The
    result's :attr:`ChaosResult.ok` additionally asserts that membership
    converged and nothing is left under-replicated. Extra
    :class:`ChaosConfig` fields (``symbol=``, ``scrub=``, ...) pass
    through as overrides.
    """
    fields = dict(CHURN_PRESET)
    fields.update(overrides)
    return ChaosConfig.from_dict(fields, seed=seed, duration=duration).run()
