"""Fault injection and chaos testing for the Danaus reproduction.

Three layers (see ``docs/faults.md``):

* **injection** — :class:`FaultPlan` schedules deterministic faults
  (OSD crashes, slow disks, partitions, MDS outages, service crashes)
  against a :class:`~repro.world.World`;
* **recovery** — the client retry/backoff machinery, MDS session
  reestablishment and :class:`~repro.core.ServiceSupervisor` live with
  the components they protect (``storage``, ``cephclient``, ``core``);
* **chaos harness** — :func:`run_chaos` runs a mutating workload under a
  plan and verifies end-to-end data integrity and convergence.
"""

from repro.faults.chaos import (
    ChaosConfig,
    ChaosFileserver,
    ChaosResult,
    run_chaos,
    run_membership_churn,
)
from repro.faults.plan import (
    KINDS,
    MDS_HA_KINDS,
    MEMBERSHIP_KINDS,
    FaultAction,
    FaultPlan,
)

__all__ = [
    "FaultAction",
    "FaultPlan",
    "KINDS",
    "MDS_HA_KINDS",
    "MEMBERSHIP_KINDS",
    "ChaosConfig",
    "ChaosFileserver",
    "ChaosResult",
    "run_chaos",
    "run_membership_churn",
]
