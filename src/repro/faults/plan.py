"""Deterministic fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is a seeded schedule of :class:`FaultAction`\\ s over
one :class:`~repro.world.World`. Every action fires either at a simulated
time (``at=``) or once the cluster has completed a number of data ops
(``after_ops=``); windowed actions (``duration=``) heal themselves. The
plan records every injection in :attr:`FaultPlan.log`, so two runs with
the same seed produce byte-identical fault schedules — the property the
chaos tests assert.

Supported action kinds:

=================  ==========================================================
``osd_crash``      kill OSD ``target`` (daemon dies, device survives)
``osd_restart``    restart OSD ``target``, mark it up, run recovery
``disk_slow``      multiply OSD ``target``'s device service time by
                   ``factor`` (default 4.0) for ``duration`` (or forever)
``partition``      partition the client-storage fabric for ``duration``
``link_degrade``   stretch fabric latency by ``delay_factor`` and drop
                   ``loss_rate`` of messages for ``duration``
``mds_down``       MDS unavailability window; heals through journal
                   replay (sessions lost, acked namespace rebuilt) —
                   or the legacy oracle ``Mds.restart()`` under
                   ``oracle_meta=True``
``mds_crash``      SIGKILL the active MDS of rank ``target`` (un-journaled
                   in-flight mutations are honestly lost; a standby
                   promotes via heartbeats, or ``duration`` restores the
                   daemon in place through journal replay)
``mds_failover``   administratively promote a standby over rank
                   ``target``'s live active (the deposed daemon is fenced
                   by mdsmap epoch, then rejoins as a standby)
``mds_rank_split`` grow the metadata service by one directory-hash rank
                   (max_mds bump; caps and dedup state re-home)
``service_crash``  crash the named Danaus :class:`FilesystemService`
``flusher_stall``  stall the host kernel's writeback for ``duration``
``bitrot``         silently flip ``flips`` bits in one stored replica of a
                   deterministically chosen object (``target`` pins the OSD)
``torn_write``     silently truncate one replica's copy to
                   ``keep_fraction`` of its size (a torn replica write)
``osd_flap``       bounce OSD ``target`` down/up ``count`` times ``period``
                   seconds apart (exercises monitor flap damping)
``osd_add``        grow the cluster by one OSD at runtime (CRUSH remap,
                   throttled backfill onto the newcomer)
``osd_drain``      gracefully drain OSD ``target`` out of the CRUSH map
                   (its objects remap away; backfill migrates, then trims)
=================  ==========================================================

Scheduling any corruption kind arms cluster integrity on install
(checksum recording, verified reads, read-repair) — the silent faults are
only survivable with verification on. Scheduling any membership kind
(:data:`MEMBERSHIP_KINDS`) arms the failure lifecycle on install: the
monitor's heartbeat prober detects crashes instead of oracle
``mark_down`` calls, and the throttled backfill scheduler re-replicates
what churn displaces.
"""

from repro.common.errors import RETRYABLE, ConfigError
from repro.common.rng import make_rng
from repro.metrics import MetricSet

__all__ = [
    "CORRUPTION_KINDS",
    "FaultAction",
    "FaultPlan",
    "KINDS",
    "MDS_HA_KINDS",
    "MEMBERSHIP_KINDS",
]

KINDS = (
    "osd_crash",
    "osd_restart",
    "disk_slow",
    "partition",
    "link_degrade",
    "mds_down",
    "service_crash",
    "flusher_stall",
    "bitrot",
    "torn_write",
    "osd_flap",
    "osd_add",
    "osd_drain",
    "mds_crash",
    "mds_failover",
    "mds_rank_split",
)

#: Fault kinds that silently corrupt stored replicas (integrity required).
CORRUPTION_KINDS = ("bitrot", "torn_write")

#: Fault kinds that exercise the membership lifecycle (heartbeats +
#: throttled backfill are armed on install when any is scheduled).
MEMBERSHIP_KINDS = ("osd_flap", "osd_add", "osd_drain")

#: Fault kinds that need the metadata-HA machinery (journaled ranks +
#: standby pool + heartbeat-driven failover) armed on install.
MDS_HA_KINDS = ("mds_crash", "mds_failover", "mds_rank_split")

#: pause between recovery attempts when the fabric is still partitioned.
_RECOVER_RETRY_DELAY = 0.25

#: poll cadence and bound for corruption actions waiting on stored bytes
#: (client caches hold dirty data until flush, so a mid-run replica store
#: can be legitimately empty — the rot lands once real bytes exist).
_CORRUPT_DEFER_DELAY = 0.25
_CORRUPT_DEFER_POLLS = 240


class FaultAction(object):
    """One scheduled fault: a kind, a trigger, an optional heal window."""

    __slots__ = ("kind", "at", "after_ops", "target", "duration", "params")

    def __init__(self, kind, at=None, after_ops=None, target=None,
                 duration=None, **params):
        if kind not in KINDS:
            raise ConfigError("unknown fault kind %r" % kind)
        if (at is None) == (after_ops is None):
            raise ConfigError(
                "fault %r needs exactly one of at=/after_ops=" % kind
            )
        self.kind = kind
        self.at = at
        self.after_ops = after_ops
        self.target = target
        self.duration = duration
        self.params = params

    def __repr__(self):
        trigger = (
            "at=%.3f" % self.at if self.at is not None
            else "after_ops=%d" % self.after_ops
        )
        return "<FaultAction %s %s target=%r>" % (self.kind, trigger,
                                                  self.target)


class FaultPlan(object):
    """A seeded, reproducible schedule of faults over one world."""

    def __init__(self, seed=0, oracle_meta=False, mds_standbys=1):
        self.seed = seed
        #: legacy compat: heal ``mds_down`` via the oracle ``restart()``
        #: (resurrecting un-acked in-memory mutations) instead of the
        #: honest journal-replay recovery.
        self.oracle_meta = oracle_meta
        #: standby-replay daemons created when an HA kind arms the pool
        self.mds_standbys = mds_standbys
        self.actions = []
        #: fired injections, in order: (sim_time, event, kind, target).
        self.log = []
        self.metrics = MetricSet("faults")
        #: corruption actions still waiting for stored bytes to damage;
        #: the chaos pipeline waits for this to drain before its final
        #: scrub, so every scheduled corruption lands inside the run.
        self.pending_corruptions = 0
        self._world = None
        self._services = {}
        self._op_triggers = []
        self._installed = False

    # -- authoring -------------------------------------------------------

    def schedule(self, kind, at=None, after_ops=None, target=None,
                 duration=None, **params):
        """Add one action; returns it (plans are built before install)."""
        if self._installed:
            raise ConfigError("plan already installed")
        action = FaultAction(kind, at=at, after_ops=after_ops, target=target,
                             duration=duration, **params)
        self.actions.append(action)
        return action

    @classmethod
    def generate(cls, seed, horizon, num_osds, services=(), osd_crashes=1,
                 partitions=1, service_crashes=1, mds_windows=0,
                 slow_disks=0, bitrot=0, torn_writes=0, flaps=0,
                 osd_adds=0, osd_drains=0, mds_crashes=0, mds_failovers=0,
                 mds_rank_splits=0, mds_standbys=1, oracle_meta=False):
        """A random-but-reproducible plan over ``horizon`` seconds.

        Every crash gets a matching restart and every window heals well
        inside the horizon, so a workload outliving the plan converges.
        ``flaps``/``osd_adds``/``osd_drains`` schedule membership churn
        (see :data:`MEMBERSHIP_KINDS`); installing such a plan arms the
        heartbeat prober and the backfill scheduler. The metadata kinds
        (``mds_crashes``/``mds_failovers``/``mds_rank_splits``, see
        :data:`MDS_HA_KINDS`) arm the journaled-rank machinery with
        ``mds_standbys`` standby-replay daemons. New kinds draw from the
        rng strictly after the historical ones and only when requested,
        so plans generated with the legacy knobs are bit-identical.
        """
        rng = make_rng(seed, "fault-plan")
        plan = cls(seed, oracle_meta=oracle_meta, mds_standbys=mds_standbys)
        for _ in range(osd_crashes):
            osd = rng.randrange(num_osds)
            start = horizon * rng.uniform(0.15, 0.40)
            plan.schedule("osd_crash", at=start, target=osd)
            plan.schedule(
                "osd_restart",
                at=start + horizon * rng.uniform(0.10, 0.25),
                target=osd,
            )
        for _ in range(partitions):
            plan.schedule(
                "partition",
                at=horizon * rng.uniform(0.45, 0.60),
                duration=horizon * rng.uniform(0.03, 0.08),
            )
        services = list(services)
        for _ in range(service_crashes if services else 0):
            plan.schedule(
                "service_crash",
                at=horizon * rng.uniform(0.30, 0.75),
                target=services[rng.randrange(len(services))],
            )
        for _ in range(mds_windows):
            plan.schedule(
                "mds_down",
                at=horizon * rng.uniform(0.20, 0.70),
                duration=horizon * rng.uniform(0.02, 0.05),
            )
        for _ in range(slow_disks):
            plan.schedule(
                "disk_slow",
                at=horizon * rng.uniform(0.20, 0.60),
                target=rng.randrange(num_osds),
                duration=horizon * rng.uniform(0.10, 0.20),
                factor=float(rng.choice([2, 4, 8])),
            )
        # Corruption fires mid-run: late enough that data exists to rot,
        # early enough that scrub/read-repair converge inside the horizon.
        for _ in range(bitrot):
            plan.schedule(
                "bitrot",
                at=horizon * rng.uniform(0.30, 0.65),
                flips=int(rng.choice([4, 8, 16])),
            )
        for _ in range(torn_writes):
            plan.schedule(
                "torn_write",
                at=horizon * rng.uniform(0.30, 0.65),
                keep_fraction=rng.uniform(0.25, 0.75),
            )
        # Membership churn: flaps fire early enough that damping and the
        # subsequent rejoin settle in-horizon; adds/drains fire mid-run so
        # backfill migrates remapped objects while the workload mutates.
        for _ in range(flaps):
            plan.schedule(
                "osd_flap",
                at=horizon * rng.uniform(0.20, 0.45),
                target=rng.randrange(num_osds),
                count=2 + rng.randrange(2),
                period=rng.uniform(0.2, 0.5),
            )
        for _ in range(osd_adds):
            plan.schedule("osd_add", at=horizon * rng.uniform(0.30, 0.55))
        for _ in range(osd_drains):
            plan.schedule(
                "osd_drain",
                at=horizon * rng.uniform(0.35, 0.60),
                target=rng.randrange(num_osds),
            )
        # Metadata HA: crashes early enough that promotion + replay (and
        # the duration-healed rejoin) settle in-horizon; splits fire
        # before crashes so multi-rank failover gets exercised.
        for _ in range(mds_rank_splits):
            plan.schedule("mds_rank_split",
                          at=horizon * rng.uniform(0.10, 0.20))
        for _ in range(mds_crashes):
            plan.schedule(
                "mds_crash",
                at=horizon * rng.uniform(0.25, 0.50),
                duration=horizon * rng.uniform(0.15, 0.25),
            )
        for _ in range(mds_failovers):
            plan.schedule("mds_failover",
                          at=horizon * rng.uniform(0.30, 0.60))
        return plan

    def end_time(self):
        """Sim time by which every timed action has fired and healed."""
        end = 0.0
        for action in self.actions:
            if action.at is None:
                continue
            window = action.duration or 0.0
            if action.kind == "osd_flap":
                # A flap bounces for count down+up periods past its start.
                window = max(
                    window,
                    action.params.get("count", 3)
                    * 2.0 * action.params.get("period", 0.3),
                )
            end = max(end, action.at + window)
        return end

    # -- installation ----------------------------------------------------

    def install(self, world, services=()):
        """Arm the world and start the injection driver; returns self.

        ``services`` are the Danaus services addressable by
        ``service_crash`` actions (by ``.name``).
        """
        self._world = world
        self._services = {service.name: service for service in services}
        for action in self.actions:
            if action.kind == "service_crash" \
                    and action.target not in self._services:
                raise ConfigError(
                    "service_crash target %r not installed" % action.target
                )
        world.cluster.arm_faults()
        if any(action.kind in CORRUPTION_KINDS for action in self.actions):
            world.cluster.enable_integrity()
        if any(action.kind in MEMBERSHIP_KINDS for action in self.actions):
            world.cluster.start_backfill()
            world.cluster.monitor.start_heartbeats()
        if any(action.kind in MDS_HA_KINDS for action in self.actions):
            world.cluster.enable_mds_ha(standbys=max(1, self.mds_standbys))
            world.cluster.monitor.start_heartbeats()
        elif not self.oracle_meta and \
                any(action.kind == "mds_down" for action in self.actions):
            # Honest mds_down: journal without a failover pool, so the
            # heal replays instead of resurrecting un-acked mutations.
            world.cluster.enable_mds_ha(standbys=0)
        timed = sorted(
            (action for action in self.actions if action.at is not None),
            key=lambda action: action.at,
        )
        self._op_triggers = sorted(
            (action for action in self.actions if action.after_ops is not None),
            key=lambda action: action.after_ops,
        )
        if self._op_triggers:
            world.cluster.add_op_hook(self._on_op)
        world.sim.spawn(self._driver(timed), name="fault-driver")
        self._installed = True
        return self

    # -- firing ----------------------------------------------------------

    def _on_op(self):
        count = self._world.cluster.op_count
        while self._op_triggers and self._op_triggers[0].after_ops <= count:
            action = self._op_triggers.pop(0)
            self._world.sim.spawn(
                self._fire(action), name="fault:%s" % action.kind
            )

    def _driver(self, timed):
        sim = self._world.sim
        for action in timed:
            if action.at > sim.now:
                yield sim.timeout(action.at - sim.now)
            yield from self._fire(action)

    def _log(self, action, event):
        sim = self._world.sim
        self.log.append((round(sim.now, 9), event, action.kind, action.target))
        self.metrics.counter("events").add(1)
        sim.trace("fault", event, kind=action.kind, target=action.target)

    def _fire(self, action):
        world = self._world
        cluster = world.cluster
        self._log(action, "inject")
        self.metrics.counter(action.kind).add(1)
        if action.kind == "osd_crash":
            cluster.osds[action.target].crash()
            # With heartbeats armed the monitor detects the silence
            # itself; the oracle mark_down is the legacy-only shortcut.
            if not cluster.monitor.heartbeats_enabled:
                cluster.monitor.mark_down(action.target)
        elif action.kind == "osd_restart":
            cluster.osds[action.target].restart()
            if not cluster.monitor.heartbeats_enabled:
                cluster.monitor.mark_up(action.target)
                yield from self._recover()
            # else: the prober rejoins the responding OSD (flap-damped)
            # and the backfill scheduler re-replicates what it missed.
        elif action.kind == "disk_slow":
            factor = action.params.get("factor", 4.0)
            cluster.osds[action.target].device.set_slow_factor(factor)
            if action.duration:
                world.sim.spawn(self._heal(action), name="fault-heal")
        elif action.kind == "partition":
            world.fabric.set_partitioned(True)
            if action.duration:
                world.sim.spawn(self._heal(action), name="fault-heal")
        elif action.kind == "link_degrade":
            world.fabric.set_degraded(
                delay_factor=action.params.get("delay_factor", 1.0),
                loss_rate=action.params.get("loss_rate", 0.0),
                rng=make_rng(self.seed, "link-loss", len(self.log)),
            )
            if action.duration:
                world.sim.spawn(self._heal(action), name="fault-heal")
        elif action.kind == "mds_down":
            cluster.mds.set_available(False)
            if action.duration:
                world.sim.spawn(self._heal(action), name="fault-heal")
        elif action.kind == "mds_crash":
            rank = action.target or 0
            daemon = cluster.mds_service.active_daemon(rank)
            action.params["gid"] = daemon.gid  # heal restores this daemon
            daemon.crash()
            if action.duration:
                world.sim.spawn(self._heal(action), name="fault-heal")
        elif action.kind == "mds_failover":
            world.sim.spawn(
                cluster.mds_service.failover(action.target or 0),
                name="fault-mds-failover",
            )
        elif action.kind == "mds_rank_split":
            cluster.mds_service.split_rank()
        elif action.kind == "service_crash":
            self._services[action.target].crash()
        elif action.kind == "osd_flap":
            world.sim.spawn(self._flap(action), name="fault-flap")
        elif action.kind == "osd_add":
            cluster.add_osd()
        elif action.kind == "osd_drain":
            if action.target in cluster.crush:
                try:
                    cluster.drain_osd(action.target)
                except ConfigError:
                    # Draining would drop capacity below the replica
                    # count (e.g. a concurrent drain got there first).
                    self.metrics.counter("drain_noop").add(1)
                    self._log(action, "noop")
            else:
                self.metrics.counter("drain_noop").add(1)
                self._log(action, "noop")
        elif action.kind == "flusher_stall":
            kernel = world.kernel_for(world.machine)
            kernel.writeback.stall(action.duration or 1.0)
        elif action.kind in CORRUPTION_KINDS:
            if not self._try_corrupt(action):
                # Nothing flushed yet (dirty data still client-side):
                # defer until some replica holds bytes to damage.
                self.pending_corruptions += 1
                world.sim.spawn(
                    self._deferred_corruption(action),
                    name="fault-corrupt",
                )
        return

    def _try_corrupt(self, action):
        """Inject one corruption action now; False when nothing is stored."""
        cluster = self._world.cluster
        label = "bitrot" if action.kind == "bitrot" else "torn"
        rng = make_rng(self.seed, label, len(self.log))
        victim = self._pick_replica(cluster, rng, action.target)
        if victim is None:
            return False
        osd_id, (ino, index) = victim
        if action.kind == "bitrot":
            cluster.osds[osd_id].inject_bitrot(
                ino, index, rng, flips=action.params.get("flips", 8)
            )
        else:
            cluster.osds[osd_id].inject_torn_write(
                ino, index,
                keep_fraction=action.params.get("keep_fraction", 0.5),
            )
        self._log(action, "corrupt")
        return True

    def _deferred_corruption(self, action):
        """Poll until stored bytes exist, then damage them (bounded)."""
        sim = self._world.sim
        try:
            for _ in range(_CORRUPT_DEFER_POLLS):
                yield sim.timeout(_CORRUPT_DEFER_DELAY)
                if self._try_corrupt(action):
                    return
            self.metrics.counter("corruption_noop").add(1)
            self._log(action, "noop")
        finally:
            self.pending_corruptions -= 1

    @staticmethod
    def _pick_replica(cluster, rng, target=None):
        """A deterministic ``(osd_id, (ino, index))`` corruption victim.

        Drawn from the sorted set of non-trivial replicas on live,
        running OSDs at fire time (``target`` pins the OSD), so the same
        seed corrupts the same replica given the same cluster history.
        Returns None when nothing is stored yet.
        """
        candidates = []
        for osd in cluster.osds:
            if osd.crashed or not cluster.monitor.is_up(osd.osd_id):
                continue
            if target is not None and osd.osd_id != target:
                continue
            for key, obj in osd._objects.items():
                if len(obj) >= 2:
                    candidates.append((osd.osd_id, key))
        if not candidates:
            return None
        candidates.sort()
        return candidates[rng.randrange(len(candidates))]

    def _flap(self, action):
        """Bounce one OSD down/up repeatedly (the flap-damping fodder)."""
        world = self._world
        cluster = world.cluster
        osd = cluster.osds[action.target]
        monitor = cluster.monitor
        count = action.params.get("count", 3)
        period = action.params.get("period", 0.3)
        for _ in range(count):
            if not osd.crashed:
                osd.crash()
                if not monitor.heartbeats_enabled:
                    monitor.mark_down(action.target)
            yield world.sim.timeout(period)
            osd.restart()
            if not monitor.heartbeats_enabled:
                monitor.mark_up(action.target)
            yield world.sim.timeout(period)
        self._log(action, "flap-done")

    def _heal(self, action):
        world = self._world
        yield world.sim.timeout(action.duration)
        self._log(action, "heal")
        if action.kind == "partition":
            world.fabric.set_partitioned(False)
        elif action.kind == "link_degrade":
            world.fabric.set_degraded()
        elif action.kind == "disk_slow":
            world.cluster.osds[action.target].device.set_slow_factor(1.0)
        elif action.kind == "mds_down":
            mds = world.cluster.mds
            if self.oracle_meta or mds.journal is None:
                # Legacy oracle heal: the in-memory namespace (including
                # un-acked mutations) is resurrected wholesale.
                mds.restart()
            else:
                yield from mds.recover_local()
        elif action.kind == "mds_crash":
            yield from world.cluster.mds_service.restore(
                action.params["gid"]
            )

    def _recover(self):
        """Run monitor recovery, riding out a concurrent partition."""
        monitor = self._world.cluster.monitor
        for _ in range(20):
            try:
                yield from monitor.recover()
                return
            except RETRYABLE:
                yield self._world.sim.timeout(_RECOVER_RETRY_DELAY)
        self.metrics.counter("recovery_abandoned").add(1)
