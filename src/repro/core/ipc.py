"""Danaus interprocess communication: shared-memory request queues.

Implements §3.5 of the paper:

* one fixed-size circular request queue **per core group** (cores sharing
  an L2), so application and service threads exchanging a request also
  share a cache;
* each queue entry carries a request descriptor (call id, small args, a
  pointer to the per-thread *request buffer* used for bulk data);
* an application thread is pinned, on its first I/O, to the cores of the
  queue that received that request — no further migrations, no cache-line
  bouncing;
* the shared memory lives in the pool's private IPC namespace (System V
  rather than mmap/VFS), so submitting a request involves **no system
  call and no context switch** in the common case — only the enqueue work
  and the service-side pickup latency.

The ``single_queue`` flag collapses the per-group queues into one shared
queue; the ablation benchmark uses it to measure what the per-group
placement buys.
"""

from repro.common.errors import ConfigError, ServiceFailed
from repro.metrics import MetricSet
from repro.sim.sync import Store

__all__ = ["IpcRequest", "RequestQueue", "DanausIpc"]

#: Circular-queue capacity (entries); matches a few pages of descriptors.
QUEUE_CAPACITY = 128


class IpcRequest(object):
    """One request descriptor plus its completion event."""

    __slots__ = ("op", "fs", "args", "reply", "payload_out", "submitted_at")

    def __init__(self, sim, fs, op, args, payload_out=0):
        self.fs = fs
        self.op = op
        self.args = args
        self.reply = sim.event(name="ipc-reply:%s" % op)
        self.payload_out = payload_out
        self.submitted_at = sim.now


class RequestQueue(object):
    """A per-core-group circular queue in shared memory."""

    def __init__(self, sim, group_cores, index, name):
        self.index = index
        self.name = name
        self.cores = list(group_cores)
        self.store = Store(sim, capacity=QUEUE_CAPACITY, name=name)

    @property
    def backlog(self):
        return len(self.store)

    def __repr__(self):
        return "<RequestQueue %s cores=%s backlog=%d>" % (
            self.name,
            [core.index for core in self.cores],
            self.backlog,
        )


class DanausIpc(object):
    """Front-driver side of the Danaus IPC: queue placement and pinning."""

    def __init__(self, sim, machine, costs, pool_cores, name="ipc",
                 single_queue=False, metrics=None):
        if not pool_cores:
            raise ConfigError("IPC needs at least one pool core")
        self.sim = sim
        self.machine = machine
        self.costs = costs
        self.name = name
        self.pool_cores = list(pool_cores)
        self.metrics = metrics if metrics is not None else MetricSet(name)
        self.failed = False
        self.queues = []
        if single_queue:
            self.queues.append(
                RequestQueue(sim, self.pool_cores, 0, "%s.q0" % name)
            )
        else:
            for group in machine.groups_covering(self.pool_cores):
                cores = [core for core in group.cores if core in self.pool_cores]
                self.queues.append(
                    RequestQueue(
                        sim, cores, len(self.queues),
                        "%s.q%d" % (name, len(self.queues)),
                    )
                )

    def queue_for(self, thread):
        """The queue serving ``thread``: by its pinned/current core group."""
        if len(self.queues) == 1:
            return self.queues[0]
        core = thread.pinned if thread.pinned is not None else thread.pick_core()
        for queue in self.queues:
            if core in queue.cores:
                return queue
        return self.queues[0]

    def pin_to_queue(self, thread, queue):
        """First-I/O pinning: restrict the thread to the queue's cores."""
        if thread.pinned is None and set(thread.cpuset) != set(queue.cores):
            usable = [core for core in queue.cores if core in thread.cpuset]
            if usable:
                thread.set_cpuset(usable)
                self.metrics.counter("threads_pinned").add(1)

    def submit(self, task, fs, op, args, payload_out=0, payload_in=0):
        """Front-driver submit: enqueue, wait for the reply, return result.

        Generator. Charges the enqueue CPU and the request-buffer copies to
        the calling thread; everything stays at user level.
        """
        if self.failed:
            raise ServiceFailed("filesystem service %s is down" % self.name)
        queue = self.queue_for(task.thread)
        self.pin_to_queue(task.thread, queue)
        costs = self.costs
        obs = self.sim.observer
        span = obs.span(task, "ipc.submit", "ipc", queue=queue.name,
                        op=op) if obs is not None else None
        try:
            yield from task.cpu(
                costs.ipc_queue_op + costs.copy_cost(payload_out)
            )
            request = IpcRequest(self.sim, fs, op, args, payload_out)
            yield queue.store.put(request)
            if self.sim.tracer is not None:
                self.sim.trace("ipc", "submit", queue=queue.name, op=op)
            if obs is not None:
                obs.sample("qdepth:%s" % queue.name, queue.backlog)
            self.metrics.counter("requests").add(1)
            result = yield request.reply
            yield from task.cpu(costs.copy_cost(payload_in))
        finally:
            if span is not None:
                span.end()
        return result

    def fail(self, make_error=None):
        """Drop the service side: error out all queued requests.

        ``make_error`` builds the exception delivered to queued callers
        (defaults to :class:`ServiceFailed`); service threads blocked on
        an empty queue always get ``ServiceFailed`` — that is their
        teardown signal, regardless of what the application sees.
        """
        if make_error is None:
            def make_error():
                return ServiceFailed(
                    "filesystem service %s died" % self.name
                )
        self.failed = True
        for queue in self.queues:
            while True:
                ok, request = queue.store.try_get()
                if not ok:
                    break
                request.reply.fail(make_error())
            queue.store.abort_getters(
                ServiceFailed("filesystem service %s died" % self.name)
            )
