"""Service supervision: automatic restart of crashed Danaus services.

The paper's fault-containment story (§5) shows that a Danaus service
crash stays inside its pool; this module adds the operational other half:
a per-host supervisor (the systemd/containerd analogue) that watches its
services, respawns a crashed one after a detection-plus-exec delay, and
replays the journaled write-behind state before declaring it up.

While a service is supervised its crash surfaces to applications as the
*retryable* :class:`~repro.common.errors.ServiceRestarting`; the
filesystem library rides the restart out and resubmits, so a supervised
crash costs the pool a latency bubble instead of failed I/O — and, unlike
a kernel-client failure, the bubble never leaves the pool.

Dirty write-behind buffers live in the shared-memory segment of the pool
(§3.5), which survives the service process: replay walks the mounted
stacks down to their backend clients and flushes whatever the dead
process had buffered, mirroring a journaled user-level cache recovery.
"""

from repro.common.errors import FsError
from repro.fs.api import Task
from repro.metrics import MetricSet
from repro.sim.cpu import SimThread

__all__ = ["ServiceSupervisor"]


class ServiceSupervisor(object):
    """Watches Danaus services and restarts them after a crash."""

    def __init__(self, sim, costs, restart_delay=None, name="supervisor"):
        self.sim = sim
        self.costs = costs
        #: crash-detection plus re-exec time before the service is back.
        self.restart_delay = (
            restart_delay if restart_delay is not None else costs.restart_delay
        )
        self.name = name
        self.services = []
        self.metrics = MetricSet(name)

    def watch(self, service):
        """Start supervising ``service``; returns the service."""
        if service.supervisor is self:
            return service
        service.supervisor = self
        self.services.append(service)
        self.sim.spawn(
            self._watch_loop(service),
            name="%s:%s" % (self.name, service.name),
        )
        return service

    # -- internals -------------------------------------------------------

    def _watch_loop(self, service):
        while True:
            yield service.crash_event
            yield self.sim.timeout(self.restart_delay)
            service.restart()
            self.metrics.counter("restarts").add(1)
            # Every mount of the fs table is re-registered implicitly:
            # restart() keeps the object identity, so the mount table and
            # the front-driver references are valid the moment the new
            # threads poll their queues.
            self.metrics.counter("remounts").add(len(service.fs_table))
            replayed = yield from self._replay(service)
            self.sim.trace("svc", "supervised_restart", service=service.name,
                           replayed=replayed)

    def _replay(self, service):
        """Flush the surviving write-behind state of a restarted service.

        The dirty buffers live in the pool's shared memory, not the dead
        process, so the new incarnation pushes them to the cluster before
        serving — the journal-replay step of the restart.
        """
        thread = SimThread(
            self.sim, "%s.replay" % self.name, service.pool_cores
        )
        task = Task(thread, pool=service.pool)
        total = 0
        for client in self._backend_clients(service):
            try:
                total += yield from client.flush_all(task)
            except FsError:
                # Backend still unreachable: the data was re-dirtied and
                # the client's own flusher finishes the replay later.
                self.metrics.counter("replay_deferred").add(1)
        if total:
            self.metrics.counter("replayed_bytes").add(total)
        return total

    def _backend_clients(self, service):
        """The distinct backend clients under a service's mounted stacks."""
        clients = []
        for instance in service.fs_table.values():
            for fs in self._walk(instance.stack):
                if fs not in clients and self._is_backend_client(fs):
                    clients.append(fs)
        return clients

    @staticmethod
    def _is_backend_client(fs):
        return hasattr(fs, "flush_all") and hasattr(fs, "cache")

    @classmethod
    def _walk(cls, fs):
        yield fs
        inner = getattr(fs, "inner", None)
        if inner is not None:
            yield from cls._walk(inner)
        for branch in getattr(fs, "branches", ()):
            yield from cls._walk(branch.fs)
