"""The Danaus filesystem service: a standalone user-level process.

One service serves one container pool (or one mount of it). It owns the
*filesystem instances* — each a stack of libservices (union over backend
client) — and the back driver: service threads, one pinned per request
queue, that pick requests off shared memory and execute them entirely at
user level on the pool's reserved cores (§3.1, §3.5).

Extra service threads are spawned when a queue's backlog exceeds a
threshold, mirroring the paper's elasticity rule.

Fault containment (§5): ``crash()`` kills the service; its mounts fail
with :class:`ServiceFailed`, while the host kernel, other pools and other
services keep running — which a test demonstrates.
"""

from repro.common.errors import (
    NotMounted,
    ServiceFailed,
    ServiceRestarting,
    ThreadKilled,
)
from repro.core.ipc import DanausIpc
from repro.fs import pathutil
from repro.fs.api import Task
from repro.metrics import MetricSet
from repro.sim.cpu import SimThread

__all__ = ["FilesystemInstance", "FilesystemService"]

#: Upper bound of extra service threads per queue.
MAX_EXTRA_THREADS = 4


class FilesystemInstance(object):
    """One mounted stack of libservices (e.g. union over client)."""

    __slots__ = ("mountpoint", "stack", "libservices")

    def __init__(self, mountpoint, stack, libservices=()):
        self.mountpoint = pathutil.normalize(mountpoint)
        self.stack = stack
        self.libservices = tuple(libservices)

    def __repr__(self):
        return "<FilesystemInstance %s: %s>" % (
            self.mountpoint,
            "+".join(self.libservices) or self.stack.name,
        )


class FilesystemService(object):
    """Back driver + filesystem table of one Danaus service process."""

    def __init__(self, sim, machine, costs, pool_cores, name="fsvc",
                 single_queue=False, metrics=None, pool=None):
        self.sim = sim
        self.machine = machine
        self.costs = costs
        self.name = name
        self.pool = pool
        self.pool_cores = list(pool_cores)
        self.single_queue = single_queue
        self.metrics = metrics if metrics is not None else MetricSet(name)
        self.ipc = DanausIpc(
            sim, machine, costs, pool_cores, name="%s.ipc" % name,
            single_queue=single_queue, metrics=self.metrics,
        )
        self.fs_table = {}  # mountpoint -> FilesystemInstance
        self.crashed = False
        #: set by a ServiceSupervisor watching this service; while
        #: supervised, a crash surfaces as the retryable ServiceRestarting.
        self.supervisor = None
        #: bumps on every restart; threads of older generations exit.
        self.generation = 0
        self.crash_event = sim.event(name="%s.crash" % name)
        # Insertion-ordered (dict, not set): crash() iterates this to fail
        # replies, and set order over objects would vary run to run.
        self._inflight = {}  # request -> None, held by service threads
        self._restart_waiters = []
        self._threads = []
        self._extra_per_queue = {}
        for queue in self.ipc.queues:
            self._start_thread(queue, extra=False)

    # -- mounts ------------------------------------------------------------

    def mount(self, mountpoint, stack, libservices=()):
        """Register a filesystem instance at ``mountpoint``."""
        instance = FilesystemInstance(mountpoint, stack, libservices)
        self.fs_table[instance.mountpoint] = instance
        return instance

    def instance_at(self, mountpoint):
        instance = self.fs_table.get(pathutil.normalize(mountpoint))
        if instance is None:
            raise NotMounted(path=mountpoint)
        return instance

    # -- back driver --------------------------------------------------------------

    def _start_thread(self, queue, extra):
        index = len(self._threads)
        cores = queue.cores if queue.cores else self.pool_cores
        thread = SimThread(self.sim, "%s.t%d" % (self.name, index), cores)
        if len(cores) == 1:
            thread.pin(cores[0])
        self._threads.append(thread)
        self.sim.spawn(self._service_loop(thread, queue), name=thread.name)
        if extra:
            self._extra_per_queue[queue.index] = (
                self._extra_per_queue.get(queue.index, 0) + 1
            )
            self.sim.trace("svc", "scale", service=self.name,
                           queue=queue.index)
            self.metrics.counter("extra_threads").add(1)

    def _maybe_scale(self, queue):
        backlog = queue.backlog
        if backlog < self.costs.ipc_backlog_threshold:
            return
        if self._extra_per_queue.get(queue.index, 0) >= MAX_EXTRA_THREADS:
            return
        self._start_thread(queue, extra=True)

    def _service_loop(self, thread, queue):
        task = Task(thread, pool=self.pool)
        costs = self.costs
        generation = self.generation
        while not self.crashed and generation == self.generation:
            try:
                request = yield queue.store.get()
            except ServiceFailed:
                return  # torn down by crash()
            if self.crashed:
                if not request.reply.triggered:
                    request.reply.fail(self._down_error())
                return
            self._inflight[request] = None
            try:
                try:
                    yield self.sim.timeout(costs.ipc_poll_latency)
                    yield from task.cpu(costs.ipc_queue_op)
                    self._maybe_scale(queue)
                    handler = getattr(request.fs, request.op)
                    obs = self.sim.observer
                    span = obs.span(
                        task, "svc.handle", "svc", service=self.name,
                        op=request.op,
                    ) if obs is not None else None
                    try:
                        result = yield from handler(task, *request.args)
                    finally:
                        if span is not None:
                            span.end()
                except (ServiceFailed, ThreadKilled):
                    # The process died under us: the handler stopped at its
                    # next scheduling point and unwound cleanly. The crash
                    # already failed the reply; this thread is gone.
                    if not request.reply.triggered:
                        request.reply.fail(self._down_error())
                    return
                except Exception as err:  # noqa: BLE001 - forwarded to the app
                    if not request.reply.triggered:
                        request.reply.fail(err)
                    continue
                # crash() may have failed the reply while the handler ran.
                if not request.reply.triggered:
                    request.reply.succeed(result)
                    self.metrics.counter("ops_served").add(1)
            finally:
                self._inflight.pop(request, None)

    # -- fault injection -------------------------------------------------------------

    def _down_error(self):
        if self.supervisor is not None:
            return ServiceRestarting(
                "filesystem service %s is restarting" % self.name
            )
        return ServiceFailed("filesystem service %s is down" % self.name)

    def crash(self):
        """Kill the service process: every queued and in-flight request
        fails immediately — no caller is ever left blocked on a reply.

        Unsupervised, the mounts stay dead (:class:`ServiceFailed`);
        under a :class:`~repro.core.supervisor.ServiceSupervisor` callers
        see the retryable :class:`ServiceRestarting` instead, and the
        supervisor brings the service back.
        """
        if self.crashed:
            return
        self.crashed = True
        # SIGKILL semantics: service threads stop at their next scheduling
        # point instead of finishing in-flight handlers — a dead process
        # must not keep mutating the pool's shared state.
        for thread in self._threads:
            thread.kill()
        self.ipc.fail(self._down_error)
        for request in list(self._inflight):
            if not request.reply.triggered:
                request.reply.fail(self._down_error())
        self._inflight.clear()
        self.sim.trace("svc", "crash", service=self.name)
        self.metrics.counter("crashes").add(1)
        if not self.crash_event.triggered:
            self.crash_event.succeed()

    def restart(self):
        """Bring a crashed service back: fresh IPC segment, fresh threads.

        The object identity is preserved — the fs table, the mounts and
        every front-driver reference stay valid, like a service process
        respawned under the same pool with the same shared-memory names.
        Threads of the previous generation exit on their own.
        """
        if not self.crashed:
            return
        self.generation += 1
        self.crashed = False
        self.ipc = DanausIpc(
            self.sim, self.machine, self.costs, self.pool_cores,
            name="%s.ipc" % self.name, single_queue=self.single_queue,
            metrics=self.metrics,
        )
        self._threads = []
        self._extra_per_queue = {}
        for queue in self.ipc.queues:
            self._start_thread(queue, extra=False)
        self.crash_event = self.sim.event(name="%s.crash" % self.name)
        self.sim.trace("svc", "restart", service=self.name,
                       generation=self.generation)
        self.metrics.counter("restarts").add(1)
        waiters, self._restart_waiters = self._restart_waiters, []
        for event in waiters:
            event.succeed()

    def wait_restarted(self):
        """An event that triggers once the service is up (now, if it is)."""
        event = self.sim.event(name="%s.restarted" % self.name)
        if not self.crashed:
            event.succeed()
        else:
            self._restart_waiters.append(event)
        return event

    # -- front-driver entry ------------------------------------------------------------

    def call(self, task, instance, op, args, payload_out=0, payload_in=0):
        """Submit one operation against a mounted instance (generator)."""
        if self.crashed:
            raise self._down_error()
        return (
            yield from self.ipc.submit(
                task, instance.stack, op, args,
                payload_out=payload_out, payload_in=payload_in,
            )
        )

    def __repr__(self):
        state = "crashed" if self.crashed else "%d mounts" % len(self.fs_table)
        return "<FilesystemService %s %s>" % (self.name, state)
