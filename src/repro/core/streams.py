"""Library-managed pipes and directory streams (§4.1).

"We overload the library open files to also access the network sockets
and directory streams using mechanisms similar to the above." — the
Danaus filesystem library owns the file-descriptor space, so descriptors
for IPC pipes and directory iteration live in the same *library file
table* as regular files and never touch the kernel.

* :class:`LibraryPipe` — a byte pipe between container processes backed
  by user-level shared memory (a bounded buffer with blocking reads and
  writes, like ``pipe(2)`` without the kernel).
* :class:`DirStream` — ``opendir``/``readdir``/``closedir`` semantics
  over any mounted filesystem: a positioned iterator with a stable
  snapshot, as POSIX allows.
"""

from collections import deque

from repro.common.errors import BadFileDescriptor, InvalidArgument

__all__ = ["LibraryPipe", "DirStream", "PIPE_BUF_DEFAULT"]

#: Default pipe capacity (bytes), matching the Linux default of 64 KiB.
PIPE_BUF_DEFAULT = 64 * 1024


class LibraryPipe(object):
    """A user-level pipe: bounded byte buffer with blocking endpoints."""

    def __init__(self, sim, capacity=PIPE_BUF_DEFAULT, name="pipe"):
        if capacity <= 0:
            raise InvalidArgument("pipe capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._buffer = deque()  # chunks of bytes
        self._buffered = 0
        self._readers = deque()  # events waiting for data
        self._writers = deque()  # (event, data) waiting for space
        self.write_closed = False
        self.read_closed = False

    # -- write end -----------------------------------------------------------

    def write(self, task, data):
        """Write ``data``; blocks while the buffer is full. Sim generator."""
        if self.write_closed:
            raise BadFileDescriptor(path=self.name)
        if self.read_closed:
            raise InvalidArgument("broken pipe %s" % self.name)
        view = memoryview(bytes(data))
        written = 0
        while written < len(view):
            space = self.capacity - self._buffered
            if space <= 0:
                gate = self.sim.event(name="pipe-space")
                self._writers.append(gate)
                yield gate
                if self.read_closed:
                    raise InvalidArgument("broken pipe %s" % self.name)
                continue
            piece = bytes(view[written:written + space])
            self._buffer.append(piece)
            self._buffered += len(piece)
            written += len(piece)
            while self._readers:
                self._readers.popleft().succeed()
        return written

    def close_write(self):
        """Close the write end: readers drain the buffer then see EOF."""
        self.write_closed = True
        while self._readers:
            self._readers.popleft().succeed()

    # -- read end -------------------------------------------------------------

    def read(self, task, size):
        """Read up to ``size`` bytes; blocks while empty. b'' = EOF."""
        if self.read_closed:
            raise BadFileDescriptor(path=self.name)
        if size < 0:
            raise InvalidArgument("negative read size")
        while self._buffered == 0:
            if self.write_closed:
                return b""
            gate = self.sim.event(name="pipe-data")
            self._readers.append(gate)
            yield gate
        out = bytearray()
        while self._buffer and len(out) < size:
            chunk = self._buffer[0]
            take = min(len(chunk), size - len(out))
            out.extend(chunk[:take])
            if take == len(chunk):
                self._buffer.popleft()
            else:
                self._buffer[0] = chunk[take:]
            self._buffered -= take
        while self._writers:
            self._writers.popleft().succeed()
        return bytes(out)

    def close_read(self):
        """Close the read end: pending/future writers get EPIPE."""
        self.read_closed = True
        while self._writers:
            self._writers.popleft().succeed()


class DirStream(object):
    """A positioned directory iterator (opendir/readdir/closedir)."""

    def __init__(self, fs, path, entries):
        self.fs = fs
        self.path = path
        self._entries = list(entries)
        self._position = 0
        self.closed = False

    def next_entry(self):
        """The next name, or None at end-of-stream."""
        if self.closed:
            raise BadFileDescriptor(path=self.path)
        if self._position >= len(self._entries):
            return None
        entry = self._entries[self._position]
        self._position += 1
        return entry

    def rewind(self):
        if self.closed:
            raise BadFileDescriptor(path=self.path)
        self._position = 0

    def tell(self):
        return self._position

    def seek(self, position):
        if not 0 <= position <= len(self._entries):
            raise InvalidArgument("bad dir position %d" % position)
        self._position = position

    def close(self):
        self.closed = True
