"""The Danaus filesystem library: the preloaded, user-level front driver.

Applications either preload this library (overriding the libc I/O symbols)
or call the ``danaus_``-prefixed functions directly after recompilation —
both paths land here (§3.2). The library keeps per-process state:

* the *mount table* mapping container paths to filesystem services;
* the *library file table*: every Danaus open file gets a private file
  descriptor distinct from the kernel's, so the two descriptor spaces
  never collide (§4.1);
* requests against Danaus mounts travel over shared memory to the
  service (the default user-level path); everything else — unmounted
  paths, or *legacy* operations like ``exec``/``mmap`` whose I/O the
  kernel initiates — falls through to the kernel VFS, where a FUSE
  endpoint of the same service picks them up (the dual interface).
"""

from repro.common.errors import (
    BadFileDescriptor,
    InvalidArgument,
    ServiceRestarting,
)
from repro.fs import pathutil
from repro.fs.api import FileHandle, Filesystem, OpenFlags
from repro.metrics import MetricSet

__all__ = ["FilesystemLibrary"]


class _LibHandle(FileHandle):
    """Application-visible handle carrying the private file descriptor."""

    __slots__ = ("fd",)

    def __init__(self, fs, path, flags, fd):
        super().__init__(fs, path, flags)
        self.fd = fd


class _OpenFile(object):
    """Library file table entry."""

    __slots__ = ("fd", "route", "service", "instance", "inner", "path")

    def __init__(self, fd, route, inner, path, service=None, instance=None):
        self.fd = fd
        self.route = route  # "danaus" | "kernel"
        self.inner = inner  # service handle or VFS handle
        self.path = path
        self.service = service
        self.instance = instance


class FilesystemLibrary(Filesystem):
    """Per-process front driver implementing the POSIX-like file API."""

    name = "danauslib"

    def __init__(self, kernel, name="lib"):
        self.kernel = kernel
        self.sim = kernel.sim
        self.costs = kernel.costs
        self.lib_name = name
        self.mounts = {}  # mountpoint -> (service, instance)
        self.files = {}  # fd -> _OpenFile
        self._next_fd = 1 << 16  # far above any kernel descriptor
        self.metrics = MetricSet("lib:%s" % name)

    # -- mount table -----------------------------------------------------

    def attach(self, mountpoint, service, instance):
        """Record that ``mountpoint`` is served by a Danaus service."""
        self.mounts[pathutil.normalize(mountpoint)] = (service, instance)

    def detach(self, mountpoint):
        self.mounts.pop(pathutil.normalize(mountpoint), None)

    def resolve(self, path):
        """Longest-prefix Danaus mount lookup; None means kernel path."""
        path = pathutil.normalize(path)
        best = None
        best_len = -1
        for mountpoint, target in self.mounts.items():
            if pathutil.is_ancestor(mountpoint, path) and len(mountpoint) > best_len:
                best = (mountpoint,) + target
                best_len = len(mountpoint)
        if best is None:
            return None
        mountpoint, service, instance = best
        return service, instance, pathutil.relative_to(mountpoint, path)

    def _alloc_fd(self, entry_args):
        fd = self._next_fd
        self._next_fd += 1
        entry = _OpenFile(fd, *entry_args)
        self.files[fd] = entry
        return entry

    def _entry(self, handle):
        if not isinstance(handle, _LibHandle) or handle.closed:
            raise BadFileDescriptor(path=getattr(handle, "path", None))
        entry = self.files.get(handle.fd)
        if entry is None:
            raise BadFileDescriptor(path=handle.path)
        return entry

    def _service_call(self, task, service, instance, op, args,
                      payload_out=0, payload_in=0):
        """Submit to a service, riding out supervised restarts.

        :class:`ServiceRestarting` means the service died but a
        supervisor is bringing it back — the library waits for the
        restart (bounded by the op timeout) and resubmits, so a
        supervised crash costs the application a delay, never an error.
        Unsupervised crashes still raise ``ServiceFailed`` immediately.
        """
        attempts = 0
        while True:
            try:
                return (yield from service.call(
                    task, instance, op, args,
                    payload_out=payload_out, payload_in=payload_in,
                ))
            except ServiceRestarting:
                attempts += 1
                if attempts >= self.costs.retry_attempts:
                    raise
                self.metrics.counter("service_retries").add(1)
                yield self.sim.any_of([
                    service.wait_restarted(),
                    self.sim.timeout(self.costs.op_timeout),
                ])

    # -- Filesystem interface (the overridden libc calls) ---------------------

    def open(self, task, path, flags=OpenFlags.RDONLY, mode=0o644):
        resolved = self.resolve(path)
        if resolved is None:
            inner = yield from self.kernel.vfs.open(task, path, flags, mode)
            entry = self._alloc_fd(("kernel", inner, path))
        else:
            service, instance, inner_path = resolved
            inner = yield from self._service_call(
                task, service, instance, "open", (inner_path, flags, mode)
            )
            entry = self._alloc_fd(("danaus", inner, path, service, instance))
            self.metrics.counter("danaus_opens").add(1)
        return _LibHandle(self, path, flags, entry.fd)

    def close(self, task, handle):
        entry = self._entry(handle)
        if entry.route == "danaus":
            yield from self._service_call(
                task, entry.service, entry.instance, "close", (entry.inner,)
            )
        else:
            yield from self.kernel.vfs.close(task, entry.inner)
        del self.files[entry.fd]
        handle.closed = True

    def read(self, task, handle, offset, size):
        entry = self._entry(handle)
        if entry.route == "danaus":
            return (
                yield from self._service_call(
                    task, entry.service, entry.instance, "read",
                    (entry.inner, offset, size), payload_in=size,
                )
            )
        return (yield from self.kernel.vfs.read(task, entry.inner, offset, size))

    def write(self, task, handle, offset, data):
        entry = self._entry(handle)
        if entry.route == "danaus":
            return (
                yield from self._service_call(
                    task, entry.service, entry.instance, "write",
                    (entry.inner, offset, data), payload_out=len(data),
                )
            )
        return (yield from self.kernel.vfs.write(task, entry.inner, offset, data))

    def fsync(self, task, handle):
        entry = self._entry(handle)
        if entry.route == "danaus":
            yield from self._service_call(
                task, entry.service, entry.instance, "fsync", (entry.inner,)
            )
        else:
            yield from self.kernel.vfs.fsync(task, entry.inner)

    def _path_op(self, task, op, path, *args, payload_in=0):
        resolved = self.resolve(path)
        if resolved is None:
            handler = getattr(self.kernel.vfs, op)
            return (yield from handler(task, path, *args))
        service, instance, inner_path = resolved
        return (
            yield from self._service_call(
                task, service, instance, op, (inner_path,) + args,
                payload_in=payload_in,
            )
        )

    def stat(self, task, path):
        return (yield from self._path_op(task, "stat", path))

    def mkdir(self, task, path, mode=0o755):
        return (yield from self._path_op(task, "mkdir", path, mode))

    def rmdir(self, task, path):
        return (yield from self._path_op(task, "rmdir", path))

    def unlink(self, task, path):
        return (yield from self._path_op(task, "unlink", path))

    def readdir(self, task, path):
        return (yield from self._path_op(task, "readdir", path, payload_in=4096))

    def truncate(self, task, path, size):
        return (yield from self._path_op(task, "truncate", path, size))

    def rename(self, task, old_path, new_path):
        resolved_old = self.resolve(old_path)
        resolved_new = self.resolve(new_path)
        if resolved_old is None and resolved_new is None:
            return (yield from self.kernel.vfs.rename(task, old_path, new_path))
        if resolved_old is None or resolved_new is None:
            from repro.common.errors import CrossDevice

            raise CrossDevice(path=new_path)
        service, instance, inner_old = resolved_old
        other_service, other_instance, inner_new = resolved_new
        if instance is not other_instance:
            from repro.common.errors import CrossDevice

            raise CrossDevice(path=new_path)
        yield from self._service_call(
            task, service, instance, "rename", (inner_old, inner_new)
        )

    # -- pipes and directory streams (§4.1) ------------------------------------------

    def pipe(self, capacity=None):
        """Create a user-level pipe; returns ``(read_handle, write_handle)``.

        Both descriptors live in the library file table like regular open
        files; the data path is pure shared memory — no kernel involved.
        """
        from repro.core.streams import PIPE_BUF_DEFAULT, LibraryPipe

        pipe = LibraryPipe(
            self.sim, capacity or PIPE_BUF_DEFAULT,
            name="%s.pipe%d" % (self.lib_name, self._next_fd),
        )
        read_entry = self._alloc_fd(("pipe-read", pipe, "<pipe>"))
        write_entry = self._alloc_fd(("pipe-write", pipe, "<pipe>"))
        read_handle = _LibHandle(self, "<pipe>", OpenFlags.RDONLY, read_entry.fd)
        write_handle = _LibHandle(self, "<pipe>", OpenFlags.WRONLY, write_entry.fd)
        self.metrics.counter("pipes").add(1)
        return read_handle, write_handle

    def pipe_read(self, task, handle, size):
        """Read from a pipe descriptor (blocks until data or EOF)."""
        entry = self._entry(handle)
        if entry.route != "pipe-read":
            raise InvalidArgument("not a pipe read end")
        yield from task.cpu(self.costs.ipc_queue_op)
        data = yield from entry.inner.read(task, size)
        return data

    def pipe_write(self, task, handle, data):
        """Write to a pipe descriptor (blocks while the buffer is full)."""
        entry = self._entry(handle)
        if entry.route != "pipe-write":
            raise InvalidArgument("not a pipe write end")
        yield from task.cpu(
            self.costs.ipc_queue_op + self.costs.copy_cost(len(data))
        )
        return (yield from entry.inner.write(task, data))

    def pipe_close(self, handle):
        """Close one pipe end (EOF for readers / EPIPE for writers)."""
        entry = self._entry(handle)
        if entry.route == "pipe-read":
            entry.inner.close_read()
        elif entry.route == "pipe-write":
            entry.inner.close_write()
        else:
            raise InvalidArgument("not a pipe descriptor")
        del self.files[entry.fd]
        handle.closed = True

    def opendir(self, task, path):
        """Open a directory stream; returns a library handle."""
        from repro.core.streams import DirStream

        entries = yield from self.readdir(task, path)
        stream = DirStream(self, path, entries)
        entry = self._alloc_fd(("dir", stream, path))
        return _LibHandle(self, path, OpenFlags.DIRECTORY, entry.fd)

    def readdir_next(self, task, handle):
        """Next directory entry name, or None at end (sim generator)."""
        entry = self._entry(handle)
        if entry.route != "dir":
            raise InvalidArgument("not a directory stream")
        yield from task.cpu(self.costs.dirent_op)
        return entry.inner.next_entry()

    def rewinddir(self, handle):
        entry = self._entry(handle)
        if entry.route != "dir":
            raise InvalidArgument("not a directory stream")
        entry.inner.rewind()

    def closedir(self, handle):
        entry = self._entry(handle)
        if entry.route != "dir":
            raise InvalidArgument("not a directory stream")
        entry.inner.close()
        del self.files[entry.fd]
        handle.closed = True

    # -- legacy (kernel-initiated) I/O ----------------------------------------------

    def exec_read(self, task, path):
        """exec(2): the kernel loads the binary — always the kernel path.

        On a Danaus mount this lands on the FUSE endpoint of the same
        filesystem service (Fig. 2's dedicated FUSE threads); Lighttpd
        startup (Fig. 8) is dominated by exactly this traffic.
        """
        self.metrics.counter("legacy_reads").add(1)
        return (yield from self.kernel.vfs.read_file(task, path))

    def mmap_read(self, task, path):
        """mmap(2) of a shared library: kernel-initiated paging, as exec."""
        self.metrics.counter("legacy_reads").add(1)
        return (yield from self.kernel.vfs.read_file(task, path))

    # Recompiled applications call the danaus_-prefixed symbols directly;
    # they are the same entry points.
    danaus_open = open
    danaus_close = close
    danaus_read = read
    danaus_write = write
    danaus_fsync = fsync
    danaus_stat = stat
