"""Danaus core: filesystem library, IPC and per-tenant services."""

from repro.core.ipc import DanausIpc, IpcRequest, RequestQueue
from repro.core.library import FilesystemLibrary
from repro.core.service import FilesystemInstance, FilesystemService

__all__ = [
    "DanausIpc",
    "IpcRequest",
    "RequestQueue",
    "FilesystemLibrary",
    "FilesystemInstance",
    "FilesystemService",
]
