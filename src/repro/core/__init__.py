"""Danaus core: filesystem library, IPC and per-tenant services."""

from repro.core.ipc import DanausIpc, IpcRequest, RequestQueue
from repro.core.library import FilesystemLibrary
from repro.core.service import FilesystemInstance, FilesystemService
from repro.core.supervisor import ServiceSupervisor

__all__ = [
    "DanausIpc",
    "IpcRequest",
    "RequestQueue",
    "FilesystemLibrary",
    "FilesystemInstance",
    "FilesystemService",
    "ServiceSupervisor",
]
