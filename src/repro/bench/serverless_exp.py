"""Extension experiment: serverless tenants next to a noisy neighbour.

Not a paper figure — it operationalises §9's "per-tenant storage
provisioning for serverless function computations": N function tenants
run over Danaus (D) or the kernel client (K) while a RandomIO neighbour
occupies its own pool. The prediction, extrapolated from Fig. 6: Danaus
keeps the invocation tail flat under colocation; the kernel-shared path
lets the neighbour into every tenant's p99.
"""

from repro.bench.harness import Experiment
from repro.bench.util import scaled_costs
from repro.common import units
from repro.stacks import StackFactory, mount_local
from repro.workloads import RandomIO
from repro.workloads.serverless import ServerlessTenant
from repro.world import World

__all__ = ["ServerlessColocation", "run_serverless"]


def run_serverless(symbol, n_tenants=2, with_neighbor=True, duration=4.0,
                   seed=1):
    world = World(
        num_cores=2 * (n_tenants + 1), ram_bytes=units.gib(128),
        costs=scaled_costs(),
    )
    world.activate_cores(2 * (n_tenants + 1))
    tenants = []
    for index in range(n_tenants):
        pool = world.engine.create_pool(
            "fn%d" % index, num_cores=2, ram_bytes=units.mib(64)
        )
        world.kernel.writeback.set_max_dirty(pool.ram, units.mib(8))
        mount = StackFactory(world, pool, symbol).mount_root("c0")
        # Result objects are sized so the tenants generate real writeback
        # traffic — the contended path of Fig. 6 — not just metadata ops.
        tenants.append(ServerlessTenant(
            mount, pool, duration=duration, seed=seed + index,
            state_size=units.kib(192), compute_cpu=0.0002,
        ))
    neighbor_pool = world.engine.create_pool(
        "nbr", num_cores=2, ram_bytes=units.mib(64)
    )
    world.kernel.writeback.set_max_dirty(neighbor_pool.ram, units.mib(8))
    processes = [tenant.start() for tenant in tenants]
    if with_neighbor:
        local = mount_local(world, neighbor_pool, num_disks=4)
        neighbor = RandomIO(
            local.fs, neighbor_pool, duration=duration, threads=2,
            file_size=units.mib(96), seed=seed + 99,
            batch_cpu=units.usec(600),
        )
        processes.append(neighbor.start())
    from repro.bench.util import run_all

    run_all(world, processes, budget=duration * 100)
    warm_p99 = max(t.warm_latency.p99 for t in tenants)
    cold_p99 = max(
        (t.cold_latency.p99 for t in tenants if t.cold_latency.count),
        default=0.0,
    )
    invocations = sum(t.result.ops for t in tenants)
    return {
        "symbol": symbol,
        "tenants": n_tenants,
        "neighbor": "RND" if with_neighbor else "-",
        "invocations_per_sec": invocations / duration,
        "warm_p99_ms": warm_p99 * 1000.0,
        "cold_p99_ms": cold_p99 * 1000.0,
    }


class ServerlessColocation(Experiment):
    experiment_id = "ext-serverless"
    title = "Serverless tenants: invocation tail under a noisy neighbour"
    paper_expectation = (
        "Extension of §9: per-tenant Danaus clients should keep the "
        "invocation p99 flat under colocation, like Fig. 6's throughput."
    )

    def __init__(self, symbols=("K", "D"), n_tenants=2, **params):
        super().__init__(**params)
        self.symbols = symbols
        self.n_tenants = n_tenants

    def run(self):
        result = self.new_result()
        for symbol in self.symbols:
            for with_neighbor in (False, True):
                result.add_row(**run_serverless(
                    symbol, self.n_tenants, with_neighbor, **self.params
                ))
        for symbol in self.symbols:
            alone = result.value("warm_p99_ms", symbol=symbol, neighbor="-")
            coloc = result.value("warm_p99_ms", symbol=symbol, neighbor="RND")
            result.note(
                "%s: warm p99 grows %.2fx under the neighbour"
                % (symbol, coloc / alone if alone else 0)
            )
        return result
