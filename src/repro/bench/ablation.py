"""Ablations of Danaus design decisions called out in the paper.

* **client_lock** (§6.3.2, §9): the libcephfs global lock limits cached
  sequential-read concurrency; the paper's preliminary experiments showed
  removing it helps but requires refactoring. We implement the refactoring
  as the ``locking=`` policy ladder (global -> per-inode -> per-object-
  range -> adaptive, see :mod:`repro.cephclient.locking`) and measure
  each step: ``abl-lock`` keeps the paper's original two-point
  comparison, ``abl-locking`` sweeps the full ladder on both the Fig. 9
  per-file scenario and a shared-hot-file variant.
* **per-core-group IPC queues** (§3.5): Danaus keeps one request queue per
  L2 core pair so communicating threads share a cache and don't contend on
  one queue. We compare against a single shared queue.
"""

from repro.bench.harness import Experiment
from repro.bench.util import run_all
from repro.common import units
from repro.stacks import StackFactory
from repro.workloads import Seqread, Seqwrite
from repro.world import World

__all__ = [
    "ClientLockAblation",
    "IpcQueueAblation",
    "CacheDedupAblation",
    "LockingPolicyAblation",
]


def _seqread_with(locking, duration=3.0, threads=6, pool_cores=8, seed=1,
                  shared_file=False, label=None):
    world = World(num_cores=pool_cores, ram_bytes=units.gib(64))
    world.activate_cores(pool_cores)
    pool = world.engine.create_pool(
        "pool", num_cores=pool_cores, ram_bytes=units.gib(32)
    )
    factory = StackFactory(
        world, pool, "D", locking=locking,
        cache_bytes=units.gib(1),
    )
    mount = factory.mount_root("c0")
    workload = Seqread(
        mount.fs, pool, duration=duration, threads=threads,
        file_size=units.mib(4), iosize=units.mib(1), seed=seed,
        shared_file=shared_file,
    )
    run_all(world, [workload.start()], budget=duration * 200)
    client = mount.client
    policy = client._locking
    ino_wait = sum(
        lock.stats.total_wait for lock in policy._ino_locks.values()
    )
    range_wait = sum(
        lock.stats.total_wait
        for table in policy._range_locks.values()
        for lock in table.values()
    )
    row = {
        "locking": label or locking,
        "sharing": "shared-file" if shared_file else "per-file",
        "throughput_mb_s": workload.result.bytes_read / duration / units.MIB,
        "client_lock_wait_s": client.client_lock.stats.total_wait,
        "ino_lock_wait_s": ino_wait,
        "range_lock_wait_s": range_wait,
    }
    if locking == "adaptive":
        row["switches"] = len(policy.decisions)
        row["final_mode"] = policy.mode
    return row


class ClientLockAblation(Experiment):
    experiment_id = "abl-lock"
    title = "Cached Seqread with the global client_lock vs per-inode locks"
    paper_expectation = (
        "§6.3.2: the client_lock limits D's cached-read concurrency; "
        "removing it improves concurrency (the paper's future work)."
    )

    def run(self):
        result = self.new_result()
        for locking, label in (("global", "client_lock"),
                               ("inode", "fine-grained")):
            row = _seqread_with(locking, label=label, **self.params)
            # The original two-point ablation keeps its historical shape.
            for key in ("sharing", "ino_lock_wait_s", "range_lock_wait_s"):
                row.pop(key, None)
            result.add_row(**row)
        coarse = result.value("throughput_mb_s", locking="client_lock")
        fine = result.value("throughput_mb_s", locking="fine-grained")
        result.note(
            "fine-grained locking speedup: %.2fx"
            % (fine / coarse if coarse else 0)
        )
        return result


class LockingPolicyAblation(Experiment):
    """The full locking-policy ladder on the Fig. 9 cached-Seqread shape.

    Two scenario groups: the paper's *per-file* configuration (each
    thread streams its own cached file — per-inode locking removes the
    contention entirely) and a *shared-file* variant (every thread
    streams one hot file — per-inode locking degenerates back to a
    single mutex, and only the per-object-range locks restore
    concurrency). The adaptive rows show where the runtime controller
    converged and how many switches it took.
    """

    experiment_id = "abl-locking"
    title = "Cached Seqread across locking policies (global/inode/range/adaptive)"
    paper_expectation = (
        "§6.3.2 + §9: sharding the client_lock recovers cached-read "
        "concurrency; range locks additionally cover the shared-hot-file "
        "case; the adaptive policy should converge to the best tier."
    )

    def run(self):
        result = self.new_result()
        for shared_file in (False, True):
            for locking in ("global", "inode", "range", "adaptive"):
                result.add_row(**_seqread_with(
                    locking, shared_file=shared_file, **self.params
                ))
        for sharing in ("per-file", "shared-file"):
            coarse = result.value(
                "throughput_mb_s", locking="global", sharing=sharing
            )
            for locking in ("inode", "range", "adaptive"):
                fine = result.value(
                    "throughput_mb_s", locking=locking, sharing=sharing
                )
                result.note(
                    "%s %s speedup over global: %.2fx"
                    % (sharing, locking, fine / coarse if coarse else 0)
                )
        return result


def _seqwrite_with(single_queue, duration=2.0, threads=4, pool_cores=8, seed=1):
    world = World(num_cores=pool_cores, ram_bytes=units.gib(64))
    world.activate_cores(pool_cores)
    pool = world.engine.create_pool(
        "pool", num_cores=pool_cores, ram_bytes=units.gib(32)
    )
    factory = StackFactory(
        world, pool, "D", single_queue=single_queue,
        cache_bytes=units.mib(64),
    )
    mount = factory.mount_root("c0")
    workload = Seqwrite(
        mount.fs, pool, duration=duration, threads=threads,
        file_size=units.mib(8), iosize=units.mib(1), seed=seed,
    )
    run_all(world, [workload.start()], budget=duration * 200)
    return {
        "queues": "single" if single_queue else "per-core-group",
        "nr_queues": len(mount.service.ipc.queues),
        "throughput_mb_s": workload.result.bytes_written / duration / units.MIB,
        "threads_pinned": mount.service.metrics.counter("threads_pinned").value,
    }


def _dedup_memory(dedup, n_containers=4, content_bytes=units.mib(2), seed=1):
    """Memory to cache N byte-identical container roots, with/without
    block-level dedup (§9 future work, Slacker-style)."""
    from repro.bench.util import seed_tree
    from repro.cephclient import CephLibClient
    from repro.common.rng import make_rng

    world = World(num_cores=4, ram_bytes=units.gib(64))
    world.activate_cores(4)
    # Independent containers: each holds a FULL private copy of the same
    # image payload (no union — the dedup must come from the cache).
    payload = make_rng(seed, "dedup-image").randbytes(content_bytes)
    files = {
        "/pools/p/c%d/rootfs.bin" % index: payload
        for index in range(n_containers)
    }
    seed_tree(world, files, "/")
    pool = world.engine.create_pool("p", num_cores=2, ram_bytes=units.gib(8))
    client = CephLibClient(
        world.sim, world.cluster, world.costs, pool.ram, pool.cores,
        name="dedup-client", cache_dedup=dedup,
    )
    task = pool.new_task()

    def read_all():
        for index in range(n_containers):
            yield from client.read_file(task, "/pools/p/c%d/rootfs.bin" % index)

    run_all(world, [world.sim.spawn(read_all(), name="reader")], budget=5000)
    return {
        "dedup": "on" if dedup else "off",
        "containers": n_containers,
        "cache_mb": client.cache.cached_bytes / units.MIB,
        "saved_mb": client.cache.dedup_saved_bytes / units.MIB,
    }


class CacheDedupAblation(Experiment):
    experiment_id = "abl-dedup"
    title = "Client-cache memory for N identical container roots"
    paper_expectation = (
        "§9: block-level dedup in the client cache should collapse the "
        "memory of identical independent containers to ~one copy "
        "(Slacker does this in the kernel client)."
    )

    def run(self):
        result = self.new_result()
        for dedup in (False, True):
            result.add_row(**_dedup_memory(dedup, **self.params))
        off = result.value("cache_mb", dedup="off")
        on = result.value("cache_mb", dedup="on")
        result.note("cache memory reduction: %.1fx" % (off / on if on else 0))
        return result


class IpcQueueAblation(Experiment):
    experiment_id = "abl-ipc"
    title = "Danaus IPC: per-core-group request queues vs one shared queue"
    paper_expectation = (
        "§3.5: per-group queues keep requests within an L2 pair and avoid "
        "a single contended queue."
    )

    def run(self):
        result = self.new_result()
        for single_queue in (True, False):
            result.add_row(**_seqwrite_with(single_queue, **self.params))
        return result
