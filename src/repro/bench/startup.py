"""Container startup experiment: Fig. 8 (Lighttpd scaleup).

N cloned Lighttpd containers start concurrently inside a single pool over
a shared client (D, K/K, F/K, F/F). Startup traffic is read-intensive and
kernel-initiated (exec + mmap), so it runs on the *legacy* path of Danaus
— the configuration where the mature kernel stack is expected to win:

* K/K fastest (up to 8.8x over D), F/K second (2.9x over D);
* D beats F/F by 2.3-14.2x, explained by 9-39x fewer context switches
  (Fig. 8b) — D crosses FUSE once per legacy op, F/F twice per branch op.
"""

from repro.bench.harness import Experiment
from repro.bench.util import run_all, seed_image
from repro.common import units
from repro.containers import Container, lighttpd_image
from repro.stacks import StackFactory
from repro.workloads import LighttpdFleet
from repro.world import World

__all__ = ["LighttpdStartup", "run_startup"]

IMAGE_PATH = "/images/lighttpd"


def run_startup(symbol, n_containers, pool_cores=8, image_scale=1.0 / 8192,
                seed=1):
    world = World(num_cores=pool_cores, ram_bytes=units.gib(512))
    world.activate_cores(pool_cores)
    image = lighttpd_image(scale=image_scale, seed=seed)
    seed_image(world, image, IMAGE_PATH)
    pool = world.engine.create_pool(
        "fleet", num_cores=pool_cores, ram_bytes=units.gib(200)
    )
    factory = StackFactory(world, pool, symbol)
    containers = []
    mounts = []
    for index in range(n_containers):
        mount = factory.mount_root("c%d" % index, image_path=IMAGE_PATH)
        mounts.append(mount)
        containers.append(Container(pool, "c%d" % index, mount))
    fleet = LighttpdFleet(containers, image)
    run_all(world, [world.sim.spawn(fleet.run(), name="fleet")], budget=200000)
    ctx = sum(mount.ctx_switches() for mount in mounts)
    return {
        "symbol": symbol,
        "containers": n_containers,
        "real_time_s": fleet.real_time,
        "ctx_switches": ctx,
    }


class LighttpdStartup(Experiment):
    experiment_id = "fig8"
    title = "Real time to start N cloned Lighttpd containers"
    paper_expectation = (
        "K/K fastest (D up to 8.8x slower), F/K second (D 2.9x slower); "
        "D beats F/F by 2.3-14.2x with 9-39x fewer context switches."
    )

    def __init__(self, symbols=("D", "K/K", "F/K", "F/F"),
                 container_counts=(1, 8), **params):
        super().__init__(**params)
        self.symbols = symbols
        self.container_counts = container_counts

    def run(self):
        result = self.new_result()
        for count in self.container_counts:
            for symbol in self.symbols:
                result.add_row(**run_startup(symbol, count, **self.params))
        for count in self.container_counts:
            d_time = result.value("real_time_s", symbol="D", containers=count)
            for other in self.symbols:
                if other == "D":
                    continue
                other_time = result.value(
                    "real_time_s", symbol=other, containers=count
                )
                result.note(
                    "%d containers: D/%s time ratio = %.2fx"
                    % (count, other, d_time / other_time if other_time else 0)
                )
        return result
