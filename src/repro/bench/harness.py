"""Experiment harness: parameter sweeps, result tables, paper checks.

Every figure and table of the paper's evaluation maps to one
:class:`Experiment` (see DESIGN.md's per-experiment index). An experiment
runs one or more simulated configurations, collects rows of metrics, and
renders a table next to the paper's expectation so the reproduction can be
eyeballed and asserted.
"""

from repro.common import units

__all__ = ["ExperimentResult", "Experiment"]


class ExperimentResult(object):
    """Rows of measurements plus free-form notes."""

    def __init__(self, experiment_id, title, paper_expectation=""):
        self.experiment_id = experiment_id
        self.title = title
        self.paper_expectation = paper_expectation
        self.rows = []
        self.notes = []

    def add_row(self, **fields):
        self.rows.append(dict(fields))
        return self.rows[-1]

    def note(self, text):
        self.notes.append(text)

    def column(self, name):
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def rows_where(self, **conditions):
        out = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in conditions.items()):
                out.append(row)
        return out

    def value(self, column, **conditions):
        """The single value of ``column`` among rows matching conditions."""
        matches = self.rows_where(**conditions)
        if len(matches) != 1:
            raise KeyError(
                "%d rows match %r in %s" % (len(matches), conditions,
                                            self.experiment_id)
            )
        return matches[0][column]

    def to_dict(self):
        """The unified run record for this result (JSON-safe).

        Same shape every artifact shares — schema-versioned, with a
        fingerprint over the rows; see ``repro.experiments.record``.
        """
        from repro.experiments.record import make_record

        return make_record(
            self.experiment_id,
            title=self.title,
            paper_expectation=self.paper_expectation,
            rows=self.rows,
            notes=self.notes,
        )

    # -- rendering -----------------------------------------------------------

    @staticmethod
    def _fmt(value):
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return "%.0f" % value
            if abs(value) >= 1:
                return "%.2f" % value
            return "%.4g" % value
        return str(value)

    def table(self):
        """An aligned plain-text table of all rows."""
        if not self.rows:
            return "(no rows)"
        columns = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        rendered = [[self._fmt(row.get(col, "")) for col in columns]
                    for row in self.rows]
        widths = [
            max(len(col), *(len(line[index]) for line in rendered))
            for index, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
        separator = "  ".join("-" * width for width in widths)
        body = [
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
            for line in rendered
        ]
        return "\n".join([header, separator] + body)

    def report(self):
        """The full report block printed by the benchmark targets."""
        lines = [
            "=" * 72,
            "%s — %s" % (self.experiment_id, self.title),
        ]
        if self.paper_expectation:
            lines.append("paper: %s" % self.paper_expectation)
        lines.append("-" * 72)
        lines.append(self.table())
        for note in self.notes:
            lines.append("note: %s" % note)
        lines.append("=" * 72)
        return "\n".join(lines)


class Experiment(object):
    """Base class for per-figure experiments."""

    experiment_id = "exp"
    title = "experiment"
    paper_expectation = ""

    def __init__(self, **params):
        self.params = params

    def run(self):
        """Execute the experiment; returns an :class:`ExperimentResult`."""
        raise NotImplementedError

    def new_result(self):
        return ExperimentResult(
            self.experiment_id, self.title, self.paper_expectation
        )


def fmt_throughput(bytes_per_sec):
    return units.fmt_rate(bytes_per_sec)
