"""Table 2: the workload symbol registry.

Maps the paper's workload symbols to their descriptions and the classes
implementing them, so experiment definitions and reports share one
vocabulary.
"""

from repro.workloads import (
    Fileappend,
    Fileread,
    Fileserver,
    RandomIO,
    Seqread,
    Seqwrite,
    SysbenchCpu,
    Webserver,
)

__all__ = ["WORKLOADS", "describe", "workload_class"]

#: symbol -> (description from Table 2, implementing class or None)
WORKLOADS = {
    "FLS": ("Fileserver (Filebench) on Ceph", Fileserver),
    "RND": ("Random I/O with readahead (Stress-ng) on ext4/RAID0", RandomIO),
    "SSB": ("CPU benchmark (Sysbench)", SysbenchCpu),
    "WBS": ("Webserver (Filebench) on ext4/RAID0", Webserver),
    "SEQW": ("Filebench Singlestreamwrite on Ceph", Seqwrite),
    "SEQR": ("Filebench Singlestreamread on Ceph", Seqread),
    "FAPP": ("Fileappend: O_APPEND 1MB to a shared 2GB file", Fileappend),
    "FRD": ("Fileread: sequential read of a shared 2GB file", Fileread),
}

#: composite symbols of Table 2 (X+Y colocations), for documentation
COMPOSITES = {
    "1FLS/D": "1x Fileserver on user-level Danaus/Ceph cluster",
    "7FLS/D": "7x Fileserver on user-level Danaus/Ceph cluster",
    "1FLS/K": "1x Fileserver on kernel CephFS/Ceph cluster",
    "7FLS/K": "7x Fileserver on kernel CephFS/Ceph cluster",
    "X+Y": "X next to Y, X=(1|7)FLS/(D|K), Y=(RND|SSB|WBS)",
}


def describe(symbol):
    """The Table-2 description of a workload symbol."""
    if symbol in WORKLOADS:
        return WORKLOADS[symbol][0]
    return COMPOSITES[symbol]


def workload_class(symbol):
    """The class implementing a primitive workload symbol."""
    return WORKLOADS[symbol][1]
