"""Isolation experiments: Fig. 1 (motivation) and Fig. 6 (a, b, c).

One or seven Fileserver (FLS) instances run over Danaus (D) or the kernel
CephFS client (K), alone or colocated with a neighbour workload — Stress-ng
RandomIO (RND) or Filebench Webserver (WBS) on local ext4/RAID-0, or
Sysbench CPU (SSB). Each instance lives in its own container pool of
2 cores; the host activates twice as many cores as running instances, and
the neighbour's pool is always *reserved* (so "alone" runs measure how much
the kernel steals the reserved-but-idle neighbour cores).

Reported per configuration:

* summed FLS throughput (ops/s) — Fig. 1a/6a/6b bars;
* utilisation of the neighbour pool's cores — Fig. 1a/6a/6b lines;
* average kernel lock wait/hold per request — Fig. 1b;
* for SSB: p99 SSB latency and mean FLS latency — Fig. 6c.
"""

from repro.bench.harness import Experiment
from repro.bench.util import scaled_costs
from repro.common import units
from repro.stacks import StackFactory, mount_local
from repro.workloads import Fileserver, RandomIO, SysbenchCpu, Webserver
from repro.world import World

__all__ = ["FlsColocation", "run_colocation"]

#: Scaled Fileserver parameters (paper: 5 MB mean / 1000 files / 120 s).
#: The dataset (~nfiles x mean_size) is sized a few times the pool's
#: background dirty threshold so that steady-state flushing is continuous,
#: exactly like the paper's 5 GB dataset against a 2 GB threshold.
#: The file count keeps the mean file *lifetime* above the (scaled)
#: dirty-expiration interval, as in the paper — otherwise most written
#: data would be deleted before it is ever flushed, erasing the very
#: writeback pressure Fig. 1/6 measure.
FLS_PARAMS = dict(nfiles=500, mean_size=96 * units.KIB, threads=4)

#: Scaled pool memory (paper: 8 GB): holds the ~48 MB dataset in cache
#: with room to spare, like the paper's 5 GB dataset in 8 GB pools.
POOL_RAM = 128 * units.MIB


def _build_neighbor(world, pool, kind, duration, seed):
    if kind == "RND":
        mount = mount_local(world, pool, num_disks=4)
        # The paper's RND file (1 GB) does not stay cache-hot against the
        # pool's memory; keep that ratio so reads keep missing to disk.
        return RandomIO(
            mount.fs, pool, duration=duration, threads=2,
            file_size=units.mib(96), seed=seed, batch_cpu=units.usec(600),
        )
    if kind == "WBS":
        mount = mount_local(world, pool, num_disks=4)
        # As with RND: the paper's 200k x 16 KB dataset exceeds the pool's
        # memory, so serving it keeps touching the local disks.
        return Webserver(
            mount.fs, pool, duration=duration, threads=8, nfiles=3072,
            mean_size=units.kib(24), seed=seed, serve_cpu=units.usec(300),
        )
    if kind == "SSB":
        return SysbenchCpu(pool, duration=duration, threads=2,
                           request_cpu=0.002, seed=seed)
    raise ValueError("unknown neighbour %r" % kind)


def run_colocation(symbol, n_fls, neighbor=None, duration=3.0, seed=1,
                   fls_params=None, pool_ram=POOL_RAM):
    """One bar+line of Fig. 1/6: returns a metrics dict."""
    params = dict(FLS_PARAMS)
    if fls_params:
        params.update(fls_params)
    instances = n_fls + 1  # the neighbour pool is always reserved
    world = World(
        num_cores=max(2 * instances, 4), ram_bytes=units.gib(256),
        costs=scaled_costs(),
    )
    world.activate_cores(2 * instances)
    sim = world.sim

    fls_pools = [
        world.engine.create_pool("fls%d" % index, num_cores=2,
                                 ram_bytes=pool_ram)
        for index in range(n_fls)
    ]
    neighbor_pool = world.engine.create_pool(
        "nbr", num_cores=2, ram_bytes=pool_ram
    )

    fls_workloads = []
    for index, pool in enumerate(fls_pools):
        factory = StackFactory(
            world, pool, symbol,
            # The paper gives D a cache that holds the whole dataset.
            cache_bytes=pool_ram // 2,
        )
        # Scaled dirty ceiling (the paper's "50% of pool RAM" against the
        # scaled dataset; see scaled_costs for the rationale).
        world.kernel.writeback.set_max_dirty(pool.ram, units.mib(8))
        mount = factory.mount_root("c0")
        fls_workloads.append(
            Fileserver(mount.fs, pool, duration=duration, seed=seed + index,
                       **params)
        )
    world.kernel.writeback.set_max_dirty(neighbor_pool.ram, units.mib(8))

    neighbor_workload = None
    if neighbor is not None:
        neighbor_workload = _build_neighbor(
            world, neighbor_pool, neighbor, duration, seed + 100
        )

    processes = [workload.start() for workload in fls_workloads]
    if neighbor_workload is not None:
        processes.append(neighbor_workload.start())
    neighbor_pool.probe.reset()
    start = sim.now
    snapshots = {}

    def waiter():
        yield sim.all_of(processes)
        # Sample the neighbour-core utilisation over the *active* window,
        # before the simulation's idle tail dilutes it.
        snapshots["nbr_util"] = neighbor_pool.probe.total_utilization()

    done = sim.spawn(waiter())
    finished = sim.run_until(done, start + duration * 40)
    assert finished, "colocation run did not finish"

    lock_stats = world.kernel.locks.total_stats()
    fls_ops = sum(w.result.ops for w in fls_workloads)
    fls_latency = [w.result.latency.mean for w in fls_workloads]
    out = {
        "symbol": symbol,
        "n_fls": n_fls,
        "neighbor": neighbor or "-",
        "fls_ops_per_sec": fls_ops / duration,
        "fls_mean_latency": sum(fls_latency) / len(fls_latency) if fls_latency else 0.0,
        "nbr_core_util_pct": 100.0 * snapshots["nbr_util"],
        "lock_wait_us": lock_stats.avg_wait / units.USEC,
        "lock_hold_us": lock_stats.avg_hold / units.USEC,
    }
    if neighbor == "SSB" and neighbor_workload is not None:
        out["ssb_p99_ms"] = neighbor_workload.result.latency.p99 / units.MSEC
    return out


class FlsColocation(Experiment):
    """Sweep of FLS instances x neighbour x client (Fig. 1 + Fig. 6a/6b)."""

    experiment_id = "fig6a"
    title = "Fileserver colocated with RandomIO (D vs K)"
    paper_expectation = (
        "K: 7.4x drop for 1FLS+RND, 16.5x for 7FLS+RND; D drops <=16%. "
        "K uses the idle neighbour cores heavily, D <2.5%."
    )

    def __init__(self, symbols=("K", "D"), fls_counts=(1, 3), neighbor="RND",
                 duration=8.0, **params):
        super().__init__(**params)
        self.symbols = symbols
        self.fls_counts = fls_counts
        self.neighbor = neighbor
        self.duration = duration

    def run(self):
        result = self.new_result()
        for symbol in self.symbols:
            for n_fls in self.fls_counts:
                for neighbor in (None, self.neighbor):
                    row = run_colocation(
                        symbol, n_fls, neighbor, duration=self.duration,
                        **self.params,
                    )
                    result.add_row(**row)
        for symbol in self.symbols:
            for n_fls in self.fls_counts:
                alone = result.value(
                    "fls_ops_per_sec", symbol=symbol, n_fls=n_fls, neighbor="-"
                )
                coloc = result.value(
                    "fls_ops_per_sec", symbol=symbol, n_fls=n_fls,
                    neighbor=self.neighbor,
                )
                drop = alone / coloc if coloc else float("inf")
                result.note(
                    "%s %dFLS: alone/colocated throughput ratio = %.2fx"
                    % (symbol, n_fls, drop)
                )
        return result
