"""Benchmark harness and per-figure experiment definitions."""

from repro.bench.ablation import (
    CacheDedupAblation,
    ClientLockAblation,
    IpcQueueAblation,
    LockingPolicyAblation,
)
from repro.bench.charts import bar_chart, grouped_bar_chart, spark
from repro.bench.fileserver_exp import FileserverScaleout
from repro.bench.harness import Experiment, ExperimentResult
from repro.bench.isolation import FlsColocation, run_colocation
from repro.bench.registry import COMPOSITES, WORKLOADS, describe, workload_class
from repro.bench.rocksdb_exp import RocksDbScaleout, RocksDbScaleup
from repro.bench.scaleup import FileScaleup, PoolScaleup
from repro.bench.sequential import SequentialScaleout
from repro.bench.serverless_exp import ServerlessColocation
from repro.bench.startup import LighttpdStartup

__all__ = [
    "Experiment",
    "ExperimentResult",
    "FlsColocation",
    "run_colocation",
    "RocksDbScaleout",
    "RocksDbScaleup",
    "LighttpdStartup",
    "SequentialScaleout",
    "FileserverScaleout",
    "FileScaleup",
    "PoolScaleup",
    "ServerlessColocation",
    "CacheDedupAblation",
    "ClientLockAblation",
    "IpcQueueAblation",
    "LockingPolicyAblation",
    "WORKLOADS",
    "COMPOSITES",
    "describe",
    "workload_class",
    "bar_chart",
    "grouped_bar_chart",
    "spark",
]
