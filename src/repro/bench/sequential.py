"""Sequential I/O scaleout: Fig. 9 (Seqwrite top, Seqread bottom).

N pools, each with a private client (D, F, K) and one Seqwrite or Seqread
instance. The paper's shapes:

* Seqwrite: D and F beat K by up to 2.8x — K burns enormous time waiting
  on kernel locks (``i_mutex_dir_key``, ``i_mutex_key``) and handles I/O
  with unallocated cores that disappear as pools multiply;
* Seqread (cache-warm): K beats D by up to 37% — D's reads serialise on
  the libcephfs global ``client_lock``; D still beats F by up to 75%
  because F pays two FUSE crossings per read.
"""

from repro.bench.harness import Experiment
from repro.bench.util import run_all, scaled_costs
from repro.common import units
from repro.stacks import StackFactory
from repro.workloads import Seqread, Seqwrite
from repro.world import World

__all__ = ["SequentialScaleout", "run_sequential"]

#: Scaled parameters (paper: 1 GB file, 16 threads, 120 s).
SEQ_PARAMS = dict(file_size=units.mib(8), iosize=units.mib(1), threads=4)


def run_sequential(symbol, n_pools, mode, duration=3.0, seed=1,
                   locking=None):
    world = World(
        num_cores=max(2 * n_pools, 4), ram_bytes=units.gib(512),
        costs=scaled_costs(),
    )
    world.activate_cores(2 * n_pools)
    workloads = []
    for index in range(n_pools):
        pool = world.engine.create_pool(
            "p%d" % index, num_cores=2, ram_bytes=units.mib(96)
        )
        factory = StackFactory(world, pool, symbol, cache_bytes=units.mib(48),
                               locking=locking)
        world.kernel.writeback.set_max_dirty(pool.ram, units.mib(16))
        mount = factory.mount_root("c0")
        cls = Seqwrite if mode == "write" else Seqread
        workloads.append(
            cls(mount.fs, pool, duration=duration, seed=seed + index,
                **SEQ_PARAMS)
        )
    run_all(world, [w.start() for w in workloads], budget=duration * 200)
    total_bytes = sum(
        w.result.bytes_written + w.result.bytes_read for w in workloads
    )
    lock_stats = world.kernel.locks.total_stats()
    busy = sum(core.busy_time for core in world.machine.cores)
    return {
        "symbol": symbol,
        "pools": n_pools,
        "mode": mode,
        "throughput_mb_s": total_bytes / duration / units.MIB,
        "kernel_lock_wait_s": lock_stats.total_wait,
        "cpu_busy_s": busy,
    }


class SequentialScaleout(Experiment):
    experiment_id = "fig9"
    title = "Seqwrite/Seqread throughput at 1-N pools (D/F/K)"
    paper_expectation = (
        "write: D,F up to 2.8x over K (K: 1000x more lock wait); "
        "read: K up to 37% over D (client_lock), D up to 75% over F."
    )

    def __init__(self, symbols=("D", "F", "K"), pool_counts=(1, 4),
                 mode="write", **params):
        super().__init__(**params)
        self.symbols = symbols
        self.pool_counts = pool_counts
        self.mode = mode
        self.experiment_id = "fig9w" if mode == "write" else "fig9r"

    def run(self):
        result = self.new_result()
        for n_pools in self.pool_counts:
            for symbol in self.symbols:
                result.add_row(
                    **run_sequential(symbol, n_pools, self.mode, **self.params)
                )
        return result
