"""RocksDB experiments: Fig. 7 (a) put scaleout, (b) get scaleout,
(c) put scaleup, (d) get scaleup.

Scaleout: N independent container pools (2 cores / 8 GB each), one
RocksDB per pool over a *private* client (D, F or K). The paper's shape:
D's put latency stays flat while K's explodes with pool count (up to
16.2x at 32 pools) because every kernel-client op crosses shared kernel
locks and workqueues; F sits between (FUSE crossings, but a private
user-level cache).

Scaleup: N cloned containers inside a *single* pool, each with a private
union over one *shared* client (D, F/F, F/K, K/K). Sharing one client
forfeits the scaleout decentralisation: D's global client_lock now
serialises all clones' cached reads, so gets show the paper's crossover —
K/K wins at few clones, D still beats F/F everywhere.
"""

from repro.bench.harness import Experiment
from repro.bench.util import run_all, scaled_costs, seed_tree
from repro.common import units
from repro.stacks import StackFactory
from repro.workloads import RocksDbGet, RocksDbPut
from repro.world import World

__all__ = ["RocksDbScaleout", "RocksDbScaleup"]

#: Scaled workload (paper: 1 GB of 128 KB values, 64 MB memtable).
PUT_PARAMS = dict(
    total_bytes=units.mib(24), value_size=units.kib(128),
    memtable_bytes=units.mib(2),
)
GET_PARAMS = dict(
    populate_bytes=units.mib(24), read_bytes=units.mib(24),
    value_size=units.kib(128), memtable_bytes=units.mib(2),
)


def _small_cache():
    # Out-of-core: the cache must not hold the dataset.
    return units.mib(2)


def run_rocksdb_scaleout(symbol, n_pools, mode, seed=1):
    world = World(
        num_cores=max(2 * n_pools, 4), ram_bytes=units.gib(512),
        costs=scaled_costs(),
    )
    world.activate_cores(2 * n_pools)
    # Scaled pool memory: generous for put (write-behind wanted), tight
    # for get (the paper's get workload is explicitly out-of-core).
    pool_ram = units.mib(48) if mode == "put" else units.mib(6)
    workloads = []
    for index in range(n_pools):
        pool = world.engine.create_pool(
            "p%d" % index, num_cores=2, ram_bytes=pool_ram
        )
        factory = StackFactory(
            world, pool, symbol,
            cache_bytes=_small_cache() if mode == "get" else None,
        )
        mount = factory.mount_root("c0")
        if mode == "put":
            workload = RocksDbPut(mount.fs, pool, seed=seed + index, **PUT_PARAMS)
        else:
            workload = RocksDbGet(mount.fs, pool, seed=seed + index, **GET_PARAMS)
        workloads.append(workload)
    run_all(world, [w.start() for w in workloads], budget=100000)
    latencies = [w.result.latency.mean for w in workloads]
    lock_stats = world.kernel.locks.total_stats()
    return {
        "symbol": symbol,
        "pools": n_pools,
        "mean_latency_ms": 1000.0 * sum(latencies) / len(latencies),
        "kernel_lock_wait_s": lock_stats.total_wait,
    }


def run_rocksdb_scaleup(symbol, n_clones, mode, pool_cores=8, seed=1):
    world = World(
        num_cores=pool_cores, ram_bytes=units.gib(512), costs=scaled_costs(),
    )
    world.activate_cores(pool_cores)
    # Seed the shared read-only image (a minimal rootfs marker file).
    seed_tree(world, {"/etc/os-release": b"debian9"}, "/images/base")
    pool_ram = (
        units.mib(48) * n_clones if mode == "put"
        else units.mib(6) * n_clones
    )
    pool = world.engine.create_pool(
        "scaleup", num_cores=pool_cores, ram_bytes=pool_ram
    )
    factory = StackFactory(
        world, pool, symbol,
        cache_bytes=_small_cache() * n_clones if mode == "get" else None,
    )
    workloads = []
    for index in range(n_clones):
        # Every scaleup clone unions a private upper over the shared image
        # (for D this is the paper's "distinct union + shared client").
        mount = factory.mount_root("c%d" % index, image_path="/images/base")
        params = dict(PUT_PARAMS if mode == "put" else GET_PARAMS)
        directory = "/rocksdb"
        if mode == "put":
            workload = RocksDbPut(
                mount.fs, pool, seed=seed + index, directory=directory, **params
            )
        else:
            workload = RocksDbGet(
                mount.fs, pool, seed=seed + index, directory=directory, **params
            )
        workloads.append(workload)
    run_all(world, [w.start() for w in workloads], budget=200000)
    latencies = [w.result.latency.mean for w in workloads]
    return {
        "symbol": symbol,
        "clones": n_clones,
        "mean_latency_ms": 1000.0 * sum(latencies) / len(latencies),
    }


class RocksDbScaleout(Experiment):
    experiment_id = "fig7a"
    title = "RocksDB put latency, 1-N independent pools (D/F/K)"
    paper_expectation = (
        "put: D faster than F up to 5.9x and K up to 16.2x at 32 pools; "
        "get: D up to 1.4x over F and 2.2x over K."
    )

    def __init__(self, symbols=("D", "F", "K"), pool_counts=(1, 4),
                 mode="put", **params):
        super().__init__(**params)
        self.symbols = symbols
        self.pool_counts = pool_counts
        self.mode = mode
        if mode == "get":
            self.experiment_id = "fig7b"
            self.title = "RocksDB out-of-core get latency, 1-N pools (D/F/K)"

    def run(self):
        result = self.new_result()
        for n_pools in self.pool_counts:
            for symbol in self.symbols:
                result.add_row(
                    mode=self.mode,
                    **run_rocksdb_scaleout(symbol, n_pools, self.mode,
                                           **self.params),
                )
        return result


class RocksDbScaleup(Experiment):
    experiment_id = "fig7c"
    title = "RocksDB put latency, N clones in one pool (D, F/F, F/K, K/K)"
    paper_expectation = (
        "put: D faster than F/F, F/K, K/K up to 12.6x/3.9x/3.6x; "
        "get: K/K up to 2x faster than D at 2 clones, D up to 5.4x over "
        "F/F at 32 clones (crossover)."
    )

    def __init__(self, symbols=("D", "F/F", "F/K", "K/K"),
                 clone_counts=(2, 8), mode="put", **params):
        super().__init__(**params)
        self.symbols = symbols
        self.clone_counts = clone_counts
        self.mode = mode
        if mode == "get":
            self.experiment_id = "fig7d"
            self.title = "RocksDB get latency, N clones in one pool"

    def run(self):
        result = self.new_result()
        for n_clones in self.clone_counts:
            for symbol in self.symbols:
                result.add_row(
                    mode=self.mode,
                    **run_rocksdb_scaleup(symbol, n_clones, self.mode,
                                          **self.params),
                )
        return result
