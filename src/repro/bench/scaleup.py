"""Sequential I/O scaleup: Fig. 11 (Fileappend, Fileread).

N cloned containers in a single pool, each unioning a private upper
branch over a shared read-only lower branch that holds one large file;
all clones run concurrently and the *timespan* until all finish plus the
*maximum memory* are reported.

* Fileappend (Fig. 11a): the O_APPEND write forces a whole-file copy-up,
  so I/O is ~50/50 read/write. D's timespan beats K/K by up to 46% at 32
  containers; memory grows linearly for K/K, F/F and D, while FP/FP's
  page-cache-on-top-of-user-cache roughly doubles it.
* Fileread (Fig. 11b): pure shared reads. K/K is 1.2-4.9x faster than D
  (client_lock serialisation) but burns far more CPU; F/F needs the same
  memory as D with 11-23% longer timespan; FP/FP is faster than D but
  occupies up to 30x more memory.
"""

from repro.bench.harness import Experiment
from repro.bench.util import run_all, scaled_costs, seed_tree
from repro.common import units
from repro.common.rng import pseudo_bytes
from repro.stacks import StackFactory
from repro.workloads import Fileappend, Fileread
from repro.world import World

__all__ = ["FileScaleup", "PoolScaleup", "run_file_scaleup",
           "run_pool_scaleup"]

IMAGE_PATH = "/images/shared"
SHARED_FILE = "/shared.bin"
#: Scaled size of the paper's 2 GB shared file.
SHARED_SIZE = units.mib(8)


def run_file_scaleup(symbol, n_clones, mode, pool_cores=8, seed=1,
                     locking=None):
    world = World(
        num_cores=pool_cores, ram_bytes=units.gib(512), costs=scaled_costs(),
    )
    world.activate_cores(pool_cores)
    seed_tree(
        world,
        {SHARED_FILE: pseudo_bytes(SHARED_SIZE, (seed, "shared"))},
        IMAGE_PATH,
    )
    pool = world.engine.create_pool(
        "scaleup", num_cores=pool_cores, ram_bytes=units.gib(200)
    )
    factory = StackFactory(world, pool, symbol, locking=locking)
    workloads = []
    for index in range(n_clones):
        mount = factory.mount_root("c%d" % index, image_path=IMAGE_PATH)
        cls = Fileappend if mode == "append" else Fileread
        workloads.append(
            cls(mount.fs, pool, path=SHARED_FILE, seed=seed + index)
        )
    start = world.sim.now
    run_all(world, [w.start() for w in workloads], budget=100000)
    timespan = world.sim.now - start
    return {
        "symbol": symbol,
        "clones": n_clones,
        "mode": mode,
        "timespan_s": timespan,
        "max_memory_mb": pool.ram.high_water / units.MIB,
    }


def run_pool_scaleup(symbol, n_pools, clones_per_pool, mode="append",
                     cores_per_pool=2, seed=1):
    """Two-axis scale-up: N pools, each running M cloned containers.

    The paper's §6.3 sweep scales both axes (up to 32 pools / 256
    containers); this reproduction extends one notch at a time as engine
    headroom allows — 8 pools x 2 clones = 16 containers today. Every
    pool gets its own stack instance over a dedicated cpuset, so the
    sweep also exercises cross-pool interference, unlike
    :func:`run_file_scaleup` which stresses a single pool.
    """
    total_cores = n_pools * cores_per_pool
    world = World(
        num_cores=max(total_cores, 4), ram_bytes=units.gib(512),
        costs=scaled_costs(),
    )
    world.activate_cores(total_cores)
    seed_tree(
        world,
        {SHARED_FILE: pseudo_bytes(SHARED_SIZE, (seed, "shared"))},
        IMAGE_PATH,
    )
    workloads = []
    pools = []
    for pindex in range(n_pools):
        pool = world.engine.create_pool(
            "sp%d" % pindex, num_cores=cores_per_pool,
            ram_bytes=units.gib(32),
        )
        pools.append(pool)
        factory = StackFactory(world, pool, symbol)
        for cindex in range(clones_per_pool):
            mount = factory.mount_root(
                "p%dc%d" % (pindex, cindex), image_path=IMAGE_PATH
            )
            cls = Fileappend if mode == "append" else Fileread
            workloads.append(
                cls(mount.fs, pool, path=SHARED_FILE,
                    seed=seed + pindex * clones_per_pool + cindex)
            )
    start = world.sim.now
    run_all(world, [w.start() for w in workloads], budget=100000)
    timespan = world.sim.now - start
    return {
        "symbol": symbol,
        "pools": n_pools,
        "clones_per_pool": clones_per_pool,
        "containers": n_pools * clones_per_pool,
        "mode": mode,
        "timespan_s": timespan,
        "max_memory_mb": max(p.ram.high_water for p in pools) / units.MIB,
    }


class FileScaleup(Experiment):
    experiment_id = "fig11a"
    title = "Fileappend timespan and max memory, N clones in one pool"
    paper_expectation = (
        "append: D shortest timespan (up to 46% under K/K at 32); memory "
        "linear for D/F/F/K/K, ~2x for FP/FP. read: K/K 1.2-4.9x faster "
        "than D; F/F same memory as D, 11-23% slower; FP/FP up to 30x "
        "more memory."
    )

    def __init__(self, symbols=("D", "K/K", "F/F", "FP/FP"),
                 clone_counts=(2, 8, 16), mode="append", **params):
        super().__init__(**params)
        self.symbols = symbols
        self.clone_counts = clone_counts
        self.mode = mode
        if mode == "read":
            self.experiment_id = "fig11b"
            self.title = (
                "Fileread timespan and max memory, N clones in one pool"
            )

    def run(self):
        result = self.new_result()
        for count in self.clone_counts:
            for symbol in self.symbols:
                result.add_row(
                    **run_file_scaleup(symbol, count, self.mode, **self.params)
                )
        return result


class PoolScaleup(Experiment):
    """§6.3-style two-axis scale-up with pool/container counts as sweep
    axes — each cell is :func:`run_pool_scaleup` (N pools x M clones,
    one stack instance per pool on a dedicated cpuset).

    The wider cells (16 pools / 32 containers) are what the parallel
    engine makes affordable: every cell is an independent world, so a
    ``--parallel`` run fans cells' seeds across worker processes.
    """

    experiment_id = "scaleup-wide"
    title = "Fileappend timespan and max memory, N pools x M clones"
    paper_expectation = (
        "timespan grows sublinearly with pool count (pools are "
        "independent stacks on dedicated cpusets); per-pool memory "
        "high-water stays flat as pools scale out."
    )

    def __init__(self, symbols=("D",), pool_counts=(8, 16),
                 clones_per_pool_counts=(2,), mode="append", **params):
        super().__init__(**params)
        self.symbols = symbols
        self.pool_counts = pool_counts
        self.clones_per_pool_counts = clones_per_pool_counts
        self.mode = mode

    def run(self):
        result = self.new_result()
        for pools in self.pool_counts:
            for clones in self.clones_per_pool_counts:
                for symbol in self.symbols:
                    result.add_row(**run_pool_scaleup(
                        symbol, pools, clones, mode=self.mode,
                        **self.params
                    ))
        return result
