"""Shared experiment helpers: seeding, draining, waiting."""

from repro.cephclient import CephLibClient
from repro.common import units
from repro.fs import pathutil

__all__ = ["seed_tree", "seed_image", "run_all", "scaled_costs"]


def scaled_costs(**overrides):
    """The cost model with writeback time constants scaled to the data.

    Experiments shrink the paper's datasets by ~64x to stay laptop-sized;
    keeping the kernel's 5 s expire / 1 s writeback intervals would then
    let most written data be deleted before it ever ages out, removing the
    flush pressure the paper's contention results depend on. Scaling the
    intervals by a comparable factor restores the paper's ratio of file
    lifetime to dirty expiration.
    """
    from repro.costs import CostModel

    params = dict(writeback_interval=0.02, expire_interval=0.1)
    params.update(overrides)
    return CostModel(**params)


def seed_tree(world, files, prefix="/"):
    """Write ``files`` (path -> bytes) into the shared cluster namespace.

    Uses a throwaway host-side client and flushes synchronously, so the
    data is on the OSDs before any experiment traffic starts.
    """
    task = world.host_task("seed")
    account = world.machine.ram.child(
        max(units.mib(64), 2 * sum(len(d) for d in files.values())),
        "seed.ram",
    )
    client = CephLibClient(
        world.sim, world.cluster, world.costs, account, world.machine.cores,
        name="seeder", start_flusher=False,
    )

    def proc():
        for path, data in sorted(files.items()):
            target = pathutil.join(prefix, path.lstrip("/"))
            yield from client.makedirs(task, pathutil.parent_of(target))
            yield from client.write_file(task, target, data)
        yield from client.flush_all(task)
        client.stop()

    process = world.sim.spawn(proc(), name="seed")
    finished = world.sim.run_until(process, world.sim.now + 10000)
    assert finished, "seeding did not finish"


def seed_image(world, image, prefix):
    """Materialise an image into the shared namespace (pre-experiment)."""
    seed_tree(world, image.flat(), prefix)


def run_all(world, processes, budget):
    """Run the simulation until every process in ``processes`` finished."""
    deadline = world.sim.now + budget

    def waiter():
        yield world.sim.all_of(processes)

    done = world.sim.spawn(waiter())
    finished = world.sim.run_until(done, deadline)
    assert finished, (
        "experiment did not finish within %.0f simulated seconds" % budget
    )
