"""Fileserver scaleout: Fig. 10.

1-N pools, each running Filebench Fileserver over a private client (D, F,
K). The paper's shape: D's aggregate throughput keeps scaling (2.7 GB/s at
16 pools — 2.3x over K at 8 pools, 1.7x over F at 1 pool), while K's
clients pile up on shared kernel locks and generate up to 22x more I/O
wait at the client.
"""

from repro.bench.harness import Experiment
# The Fileserver calibration (file count vs dirty-expiration lifetime,
# pool memory vs dataset) is shared with the isolation experiments —
# see the rationale in repro.bench.isolation.
from repro.bench.isolation import FLS_PARAMS, POOL_RAM
from repro.bench.util import run_all, scaled_costs
from repro.common import units
from repro.stacks import StackFactory
from repro.workloads import Fileserver
from repro.world import World

__all__ = ["FileserverScaleout", "run_fileserver_scaleout"]


def run_fileserver_scaleout(symbol, n_pools, duration=2.0, seed=1):
    world = World(
        num_cores=max(2 * n_pools, 4), ram_bytes=units.gib(512),
        costs=scaled_costs(),
    )
    world.activate_cores(2 * n_pools)
    workloads = []
    for index in range(n_pools):
        pool = world.engine.create_pool(
            "p%d" % index, num_cores=2, ram_bytes=POOL_RAM
        )
        factory = StackFactory(world, pool, symbol, cache_bytes=POOL_RAM // 2)
        world.kernel.writeback.set_max_dirty(pool.ram, units.mib(8))
        mount = factory.mount_root("c0")
        workloads.append(
            Fileserver(mount.fs, pool, duration=duration, seed=seed + index,
                       **FLS_PARAMS)
        )
    run_all(world, [w.start() for w in workloads], budget=duration * 200)
    total_bytes = sum(
        w.result.bytes_read + w.result.bytes_written for w in workloads
    )
    total_ops = sum(w.result.ops for w in workloads)
    lock_stats = world.kernel.locks.total_stats()
    return {
        "symbol": symbol,
        "pools": n_pools,
        "total_ops_per_sec": total_ops / duration,
        "throughput_mb_s": total_bytes / duration / units.MIB,
        "kernel_lock_wait_s": lock_stats.total_wait,
    }


class FileserverScaleout(Experiment):
    experiment_id = "fig10"
    title = "Fileserver aggregate throughput at 1-N pools (D/F/K)"
    paper_expectation = (
        "D scales to 2.7 GB/s at 16 pools: 1.7x over F at 1 pool, 2.3x "
        "over K at 8 pools; K shows up to 22x higher client I/O wait."
    )

    def __init__(self, symbols=("D", "F", "K"), pool_counts=(1, 4), **params):
        super().__init__(**params)
        self.symbols = symbols
        self.pool_counts = pool_counts

    def run(self):
        result = self.new_result()
        for n_pools in self.pool_counts:
            for symbol in self.symbols:
                result.add_row(
                    **run_fileserver_scaleout(symbol, n_pools, **self.params)
                )
        return result
