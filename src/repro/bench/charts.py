"""ASCII charts for experiment reports.

The paper communicates through bar charts (throughput per configuration)
and line charts (utilisation); the CLI approximates them in plain text so
``python -m repro run fig6a`` shows the shape at a glance, without any
plotting dependency.
"""

__all__ = ["bar_chart", "grouped_bar_chart", "spark"]

#: Eighth-block characters for sub-cell resolution.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value, peak, width):
    """Render one bar of ``width`` cells scaled so ``peak`` fills it."""
    if peak <= 0:
        return ""
    cells = value / peak * width
    full = int(cells)
    remainder = cells - full
    out = "█" * full
    eighth = int(remainder * 8)
    if eighth:
        out += _BLOCKS[eighth]
    return out


def bar_chart(rows, label_key, value_key, width=40, fmt="%.4g"):
    """A horizontal bar chart; ``rows`` are dicts.

    Returns the chart as a string::

        K    ████████████████████████████████████████ 22171
        D    █████████████                            7243
    """
    if not rows:
        return "(no data)"
    labels = [str(row[label_key]) for row in rows]
    values = [float(row[value_key]) for row in rows]
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        lines.append(
            "%-*s  %-*s %s"
            % (label_width, label, width, _bar(value, peak, width),
               fmt % value)
        )
    return "\n".join(lines)


def grouped_bar_chart(rows, group_key, label_key, value_key, width=40,
                      fmt="%.4g"):
    """Bar chart with group separators (e.g. per pool count)."""
    if not rows:
        return "(no data)"
    groups = []
    for row in rows:
        group = row[group_key]
        if not groups or groups[-1][0] != group:
            groups.append((group, []))
        groups[-1][1].append(row)
    peak = max(float(row[value_key]) for row in rows)
    label_width = max(len(str(row[label_key])) for row in rows)
    lines = []
    for group, members in groups:
        lines.append("%s = %s" % (group_key, group))
        for row in members:
            value = float(row[value_key])
            lines.append(
                "  %-*s  %-*s %s"
                % (label_width, row[label_key], width,
                   _bar(value, peak, width), fmt % value)
            )
    return "\n".join(lines)


def spark(values, width=None):
    """A one-line sparkline of a numeric series."""
    if not values:
        return ""
    if width is not None and len(values) > width:
        # Downsample by taking evenly spaced points.
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo = min(values)
    hi = max(values)
    span = hi - lo
    marks = "▁▂▃▄▅▆▇█"
    if span <= 0:
        return marks[0] * len(values)
    return "".join(
        marks[min(int((v - lo) / span * (len(marks) - 1) + 0.5),
                  len(marks) - 1)]
        for v in values
    )
