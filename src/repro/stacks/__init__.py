"""Table-1 stack configurations as factories."""

from repro.stacks.factory import (
    SYMBOLS,
    StackFactory,
    mount_local,
    validate_symbol,
)
from repro.stacks.mounts import Mount

__all__ = ["SYMBOLS", "StackFactory", "mount_local", "validate_symbol", "Mount"]
