"""Mount objects: what a container receives from a stack factory."""

from repro.metrics import MetricSet

__all__ = ["Mount"]


class Mount(object):
    """A container root (or application) filesystem, fully assembled.

    Attributes:
        fs: the :class:`~repro.fs.api.Filesystem` the container's
            processes use for ordinary I/O (already rooted at '/').
        legacy_fs: the kernel-path view used by exec/mmap traffic; for
            Danaus this is the FUSE endpoint mounted in the host VFS, for
            kernel-based stacks it equals ``fs``.
        library: the Danaus filesystem library (None for kernel stacks).
        service: the Danaus filesystem service (None otherwise).
        client: the backend client instance serving this mount.
        union: the union filesystem layer, when the stack has one.
        fuse_layers: FUSE transports in the stack, outermost first (their
            metrics carry the context-switch counts of Fig. 8b).
    """

    def __init__(self, name, fs, legacy_fs=None, library=None, service=None,
                 client=None, union=None, fuse_layers=()):
        self.name = name
        self.fs = fs
        self.legacy_fs = legacy_fs
        self.library = library
        self.service = service
        self.client = client
        self.union = union
        self.fuse_layers = tuple(fuse_layers)
        self.metrics = MetricSet("mount:%s" % name)

    def exec_read(self, task, path):
        """Legacy kernel-initiated read (exec/mmap); sim generator."""
        if self.library is not None:
            self.library.metrics.counter("legacy_reads").add(1)
        target = self.legacy_fs if self.legacy_fs is not None else self.fs
        return target.read_file(task, path)

    def ctx_switches(self):
        """Context switches incurred by this mount's transports so far."""
        total = 0
        for layer in self.fuse_layers:
            total += layer.metrics.counter("ctx_switches").value
        return total

    def __repr__(self):
        return "<Mount %s>" % self.name
