"""Stack factories: the eight Table-1 client configurations.

==========  =====================  ==========================
Symbol      Union filesystem       Backend client
==========  =====================  ==========================
``D``       Danaus (optional)      Danaus (user-level cache)
``K``       —                      kernel CephFS (page cache)
``F``       —                      ceph-fuse, direct I/O
``FP``      —                      ceph-fuse + page cache
``K/K``     AUFS (page cache)      kernel CephFS (page cache)
``F/K``     unionfs-fuse           kernel CephFS (page cache)
``F/F``     unionfs-fuse           ceph-fuse (user cache only)
``FP/FP``   unionfs-fuse + pc      ceph-fuse + page cache
==========  =====================  ==========================

A :class:`StackFactory` is bound to one container pool and caches the
per-pool shared components (the backend client, the ceph-fuse daemon, the
Danaus service), so cloned containers genuinely share them — the paper's
scaleup configuration.
"""

from repro.cephclient import CephKernelFs, CephLibClient
from repro.common.errors import ConfigError
from repro.core import FilesystemLibrary, FilesystemService
from repro.fs import pathutil
from repro.fs.prefix import SubtreeFs
from repro.fuse import FuseTransport
from repro.kernel import LocalFs
from repro.stacks.mounts import Mount
from repro.unionfs import Branch, UnionFs

__all__ = ["SYMBOLS", "StackFactory", "mount_local", "validate_symbol"]

SYMBOLS = ("D", "K", "F", "FP", "K/K", "F/K", "F/F", "FP/FP")


def validate_symbol(symbol):
    """Check a Table-1 stack symbol; returns it.

    The single authority on known symbols — the factory and the
    experiment-spec validator both call this, so an unknown symbol fails
    with the same actionable message everywhere.
    """
    if symbol not in SYMBOLS:
        raise ConfigError(
            "unknown stack symbol %r (Table 1: %s)"
            % (symbol, ", ".join(SYMBOLS))
        )
    return symbol

#: symbols whose backend client is the user-level libcephfs analogue
_USER_CLIENT = {"D", "F", "FP", "F/F", "FP/FP"}
#: symbols whose backend client is the kernel CephFS client
_KERNEL_CLIENT = {"K", "K/K", "F/K"}


class StackFactory(object):
    """Builds container mounts of one pool for a Table-1 configuration."""

    def __init__(self, world, pool, symbol, cache_bytes=None,
                 fine_grained_locking=False, locking=None,
                 single_queue=False):
        validate_symbol(symbol)
        self.world = world
        self.pool = pool
        # The pool's host decides which kernel instance serves it — on a
        # multi-host world each host has its own kernel (and VFS). The
        # host also fixes the pool's partition: every component this
        # factory builds is machine-local, so a sharded run places the
        # whole pool in its host's partition.
        self.kernel = world.kernel_for(pool.machine)
        self.partition = world.partition_of(pool.machine)
        self.symbol = symbol
        self.cache_bytes = cache_bytes
        # ``locking`` names the client locking policy (global/inode/
        # range/adaptive); ``fine_grained_locking`` is the legacy boolean
        # spelling of "inode".
        if locking is None:
            locking = "inode" if fine_grained_locking else "global"
        self.locking = locking
        self.fine_grained = locking != "global"
        self.single_queue = single_queue
        self._shared = {}
        # The paper's dirty limits: 50% of pool RAM for the kernel client.
        self.kernel.writeback.set_max_dirty(pool.ram, pool.ram.capacity // 2)

    # -- shared per-pool components -----------------------------------------

    @property
    def base(self):
        """The pool's directory in the shared cluster namespace."""
        return "/pools/%s" % self.pool.name

    def lib_client(self):
        """The pool's user-level Ceph client (shared by its containers)."""
        client = self._shared.get("lib_client")
        if client is None:
            client = CephLibClient(
                self.world.sim,
                self.world.cluster,
                self.world.costs,
                account=self.pool.ram,
                cpuset=self.pool.cores,
                name="%s.libceph" % self.pool.name,
                cache_bytes=self.cache_bytes,
                locking=self.locking,
            )
            self._shared["lib_client"] = client
        return client

    def kernel_client(self):
        """The pool's kernel CephFS mount (a kernel filesystem instance)."""
        client = self._shared.get("kernel_client")
        if client is None:
            client = CephKernelFs(
                self.kernel,
                self.world.cluster,
                name="%s.cephk" % self.pool.name,
            )
            self._shared["kernel_client"] = client
        return client

    def service(self):
        """The pool's Danaus filesystem service."""
        service = self._shared.get("service")
        if service is None:
            service = FilesystemService(
                self.world.sim,
                self.pool.machine,
                self.world.costs,
                self.pool.cores,
                name="%s.fsvc" % self.pool.name,
                single_queue=self.single_queue,
                pool=self.pool,
            )
            self.pool.services.append(service)
            self._shared["service"] = service
        return service

    def inner_fuse(self, use_page_cache):
        """The pool's ceph-fuse daemon (shared; mounted once in the VFS)."""
        key = "inner_fuse"
        fuse = self._shared.get(key)
        if fuse is None:
            fuse = FuseTransport(
                self.kernel,
                self.lib_client(),
                self.pool.cores,
                name="%s.cephfuse" % self.pool.name,
                use_page_cache=use_page_cache,
                pool=self.pool,
            )
            self.kernel.vfs.mount(self._fuse_mountpoint(), fuse)
            self._shared[key] = fuse
        return fuse

    def _fuse_mountpoint(self):
        return "/fuse/%s" % self.pool.name

    # -- branch assembly for cloned containers ----------------------------------

    def _union_over(self, branch_fs, cid, image_path, base=None):
        """Union of a private upper dir and the shared image lower dir."""
        upper = pathutil.join(base or self.base, cid, "upper")
        return UnionFs(
            self.world.sim,
            self.world.costs,
            [
                Branch(branch_fs, upper, writable=True),
                Branch(branch_fs, image_path, writable=False),
            ],
            name="%s.%s.union" % (self.pool.name, cid),
        )

    # -- the factory entry point -----------------------------------------------------

    def _provision_dirs(self, cid, cloned):
        """Pre-create the container's directories in the shared namespace.

        Container creation is engine-side setup, not measured I/O, so the
        directories are created directly in the MDS tree at no simulated
        cost.
        """
        tree = self.world.cluster.mds.tree
        container_base = self._container_base(cid)
        tree.makedirs(
            pathutil.join(container_base, "upper") if cloned else container_base
        )

    def mount_root(self, cid, image_path=None, base=None):
        """Build the root mount of container ``cid``.

        ``image_path`` (a path in the shared cluster namespace, e.g.
        ``/images/lighttpd``) selects the *cloned* layout: a union of a
        private upper branch over the shared read-only image. Without it
        the container gets an independent private root directory.

        ``base`` overrides the pool directory the container root lives
        under — used by migration to re-mount a container's *existing*
        state from a different pool or host (§9).
        """
        wants_union = "/" in self.symbol
        if wants_union and image_path is None:
            raise ConfigError(
                "%s is a union configuration: pass image_path" % self.symbol
            )
        self._base_override = base
        self._provision_dirs(cid, cloned=image_path is not None)
        if self.symbol == "D":
            return self._mount_danaus(cid, image_path)
        if self.symbol == "K":
            return self._mount_kernel(cid, image_path=None)
        if self.symbol in ("F", "FP"):
            return self._mount_fuse_plain(cid, self.symbol == "FP")
        if self.symbol == "K/K":
            return self._mount_kernel(cid, image_path=image_path)
        if self.symbol == "F/K":
            return self._mount_union_fuse(
            cid, image_path, inner_kernel=True, page_cache=False)
        if self.symbol == "F/F":
            return self._mount_union_fuse(
                cid, image_path, inner_kernel=False, page_cache=False
            )
        if self.symbol == "FP/FP":
            return self._mount_union_fuse(
                cid, image_path, inner_kernel=False, page_cache=True
            )
        raise ConfigError("unhandled symbol %r" % self.symbol)

    # -- per-symbol assembly ------------------------------------------------------------

    def _container_base(self, cid):
        return pathutil.join(getattr(self, "_base_override", None) or self.base, cid)

    def _mount_danaus(self, cid, image_path):
        client = self.lib_client()
        if image_path is not None:
            stack = self._union_over(
                client, cid, image_path,
                base=getattr(self, "_base_override", None),
            )
            union = stack
            libservices = ("union", "client")
        else:
            stack = SubtreeFs(client, self._container_base(cid))
            union = None
            libservices = ("client",)
        service = self.service()
        instance = service.mount("/" + cid, stack, libservices=libservices)
        library = FilesystemLibrary(
            self.kernel, name="%s.%s" % (self.pool.name, cid)
        )
        library.attach("/", service, instance)
        # Dual interface: the same stack parked behind FUSE in the host VFS
        # serves kernel-initiated (exec/mmap) requests.
        legacy_mountpoint = "/danaus/%s/%s" % (self.pool.name, cid)
        legacy_fuse = FuseTransport(
            self.kernel,
            stack,
            self.pool.cores,
            name="%s.%s.legacy" % (self.pool.name, cid),
            use_page_cache=False,
            pool=self.pool,
        )
        self.kernel.vfs.mount(legacy_mountpoint, legacy_fuse)
        legacy_fs = SubtreeFs(self.kernel.vfs, legacy_mountpoint)
        return Mount(
            "D:%s" % cid,
            fs=library,
            legacy_fs=legacy_fs,
            library=library,
            service=service,
            client=client,
            union=union,
            fuse_layers=(legacy_fuse,),
        )

    def _mount_kernel(self, cid, image_path):
        client = self.kernel_client()
        if image_path is not None:
            stack = self._union_over(
                client, cid, image_path,
                base=getattr(self, "_base_override", None),
            )
            union = stack
        else:
            stack = SubtreeFs(client, self._container_base(cid))
            union = None
        mountpoint = "/mnt/%s/%s" % (self.pool.name, cid)
        self.kernel.vfs.mount(mountpoint, stack)
        fs = SubtreeFs(self.kernel.vfs, mountpoint)
        name = ("K/K:%s" if union else "K:%s") % cid
        return Mount(name, fs=fs, client=client, union=union)

    def _mount_fuse_plain(self, cid, use_page_cache):
        fuse = self.inner_fuse(use_page_cache)
        mountpoint = pathutil.join(
            self._fuse_mountpoint(), self._container_base(cid)[1:]
        )
        fs = SubtreeFs(self.kernel.vfs, mountpoint)
        name = ("FP:%s" if use_page_cache else "F:%s") % cid
        return Mount(
            name, fs=fs, client=self.lib_client(), fuse_layers=(fuse,)
        )

    def _mount_union_fuse(self, cid, image_path, inner_kernel, page_cache):
        if inner_kernel:
            # F/K: the union daemon reaches CephFS through the kernel.
            branch_fs = self.kernel_client()
            inner_layers = ()
            client = branch_fs
        else:
            # F/F, FP/FP: branches live behind the pool's ceph-fuse mount,
            # so every branch access is a second kernel/FUSE crossing.
            inner = self.inner_fuse(page_cache)
            branch_fs = SubtreeFs(self.kernel.vfs, self._fuse_mountpoint())
            inner_layers = (inner,)
            client = self.lib_client()
        union = self._union_over(
            branch_fs, cid, image_path,
            base=getattr(self, "_base_override", None),
        )
        outer = FuseTransport(
            self.kernel,
            union,
            self.pool.cores,
            name="%s.%s.unionfuse" % (self.pool.name, cid),
            use_page_cache=page_cache,
            pool=self.pool,
        )
        mountpoint = "/mnt/%s/%s" % (self.pool.name, cid)
        self.kernel.vfs.mount(mountpoint, outer)
        fs = SubtreeFs(self.kernel.vfs, mountpoint)
        if inner_kernel:
            name = "F/K:%s" % cid
        else:
            name = ("FP/FP:%s" if page_cache else "F/F:%s") % cid
        return Mount(
            name,
            fs=fs,
            client=client,
            union=union,
            fuse_layers=(outer,) + inner_layers,
        )


def mount_local(world, pool, name="local", num_disks=4,
                readahead_bytes=128 * 1024, direct_io=False):
    """An ext4-over-RAID0 mount on local disks (the RND/WBS substrate)."""
    kernel = world.kernel_for(pool.machine)
    device = pool.machine.make_raid0(num_disks=num_disks)
    fs = LocalFs(
        kernel, device, name="%s.ext4" % pool.name,
        readahead_bytes=readahead_bytes, direct_io=direct_io,
    )
    mountpoint = "/local/%s/%s" % (pool.name, name)
    kernel.vfs.mount(mountpoint, fs)
    kernel.writeback.set_max_dirty(pool.ram, pool.ram.capacity // 2)
    return Mount(
        "local:%s" % pool.name,
        fs=SubtreeFs(kernel.vfs, mountpoint),
        client=fs,
    )
